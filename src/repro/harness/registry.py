"""Experiment registry: id -> callable, plus the result record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError
from repro.harness.render import format_table


@dataclass
class ExperimentResult:
    """Rows of one regenerated table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    #: Free-form metrics the benches assert on (speedup averages, ...).
    metrics: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """ASCII rendering, matching the paper artifact's layout."""
        text = format_table(
            self.headers, self.rows, f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_for(self, key) -> list:
        """Extract the row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row with key {key!r} in {self.experiment_id}")


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment function."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ConfigError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = fn
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment by id (e.g. ``"fig07"``)."""
    _ensure_loaded()
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)


def _ensure_loaded() -> None:
    """Import experiment modules for their registration side effects."""
    from repro.harness import (  # noqa: F401
        experiments_eval,
        experiments_faults,
        experiments_motivation,
        experiments_realworld,
        experiments_sensitivity,
        experiments_tables,
    )
