"""Motivation experiments: Figures 1, 2, and 4."""

from __future__ import annotations

from repro.harness.registry import ExperimentResult, experiment
from repro.harness.suite import (
    evaluation_suite,
    motivation_suite,
    plain_atomics_suite,
)
from repro.workloads.registry import FIGURE7_CODES, all_workloads


@experiment("fig01")
def fig01_ipc(scale: str | None = None) -> ExperimentResult:
    """Figure 1: per-core IPC of graph workloads on the baseline."""
    results = motivation_suite(scale)
    rows = []
    ipc_by_category: dict[str, list[float]] = {}
    for workload in all_workloads():
        run, baseline = results[workload.code]
        per_core_ipc = baseline.ipc / baseline.config.num_cores
        category = workload.category.value
        rows.append([workload.code, category, per_core_ipc])
        ipc_by_category.setdefault(category, []).append(per_core_ipc)
    metrics = {
        f"mean_ipc_{cat}": sum(vals) / len(vals)
        for cat, vals in ipc_by_category.items()
    }
    return ExperimentResult(
        experiment_id="fig01",
        title="IPC of graph workloads (baseline, per core)",
        headers=["workload", "category", "ipc"],
        rows=rows,
        metrics=metrics,
        notes="paper: GT workloads mostly below 0.1 IPC; RP higher",
    )


@experiment("fig02")
def fig02_breakdown_mpki(scale: str | None = None) -> ExperimentResult:
    """Figure 2: execution-cycle breakdown and cache MPKI (baseline)."""
    results = motivation_suite(scale)
    rows = []
    backend_shares = []
    for workload in all_workloads():
        _run, baseline = results[workload.code]
        breakdown = baseline.pipeline_breakdown()
        mpki = baseline.mpki()
        rows.append(
            [
                workload.code,
                breakdown["Backend"],
                breakdown["Frontend"],
                breakdown["BadSpeculation"],
                breakdown["Retiring"],
                mpki["L1"],
                mpki["L2"],
                mpki["L3"],
            ]
        )
        backend_shares.append(breakdown["Backend"])
    return ExperimentResult(
        experiment_id="fig02",
        title="Cycle breakdown + MPKI (baseline)",
        headers=[
            "workload",
            "backend",
            "frontend",
            "badspec",
            "retiring",
            "L1_mpki",
            "L2_mpki",
            "L3_mpki",
        ],
        rows=rows,
        metrics={"mean_backend": sum(backend_shares) / len(backend_shares)},
        notes=(
            "frontend/bad-speculation shares are synthesized constants "
            "(the trace model has no fetch/speculation path)"
        ),
    )


@experiment("fig04")
def fig04_atomic_overhead(scale: str | None = None) -> ExperimentResult:
    """Figure 4: slowdown of atomics vs plain read+write (baseline)."""
    with_atomics = evaluation_suite(scale)
    without_atomics = plain_atomics_suite(scale)
    rows = []
    overheads = []
    for code in FIGURE7_CODES:
        atomic_cycles = with_atomics[code].baseline.cycles
        plain_cycles = without_atomics[code].cycles
        overhead = atomic_cycles / plain_cycles
        rows.append([code, plain_cycles, atomic_cycles, overhead])
        overheads.append(overhead)
    mean = sum(overheads) / len(overheads)
    return ExperimentResult(
        experiment_id="fig04",
        title="Atomic instruction overhead (with / without atomics)",
        headers=["workload", "plain_cycles", "atomic_cycles", "slowdown"],
        rows=rows,
        metrics={"mean_slowdown": mean, "max_slowdown": max(overheads)},
        notes="paper: 29.8% average overhead, up to 64% for DCentr",
    )
