"""Main evaluation experiments: Figures 7, 9, 10, 12, 15, and 16.

All of these are views over the shared :func:`evaluation_suite` grid.
"""

from __future__ import annotations

from repro.analytical.validation import (
    average_error,
    validate_against_simulation,
)
from repro.energy.model import uncore_energy
from repro.harness.registry import ExperimentResult, experiment
from repro.harness.suite import evaluation_suite
from repro.workloads.registry import FIGURE7_CODES


@experiment("fig07")
def fig07_speedup(scale: str | None = None) -> ExperimentResult:
    """Figure 7: speedups over the baseline system."""
    suite = evaluation_suite(scale)
    rows = []
    upei_speedups, graphpim_speedups = [], []
    for code in FIGURE7_CODES:
        report = suite[code]
        upei = report.speedup("U-PEI")
        graphpim = report.speedup("GraphPIM")
        rows.append([code, 1.0, upei, graphpim])
        upei_speedups.append(upei)
        graphpim_speedups.append(graphpim)
    mean_graphpim = sum(graphpim_speedups) / len(graphpim_speedups)
    mean_upei = sum(upei_speedups) / len(upei_speedups)
    return ExperimentResult(
        experiment_id="fig07",
        title="Speedups over the baseline system",
        headers=["workload", "Baseline", "U-PEI", "GraphPIM"],
        rows=rows,
        metrics={
            "mean_graphpim": mean_graphpim,
            "mean_upei": mean_upei,
            "max_graphpim": max(graphpim_speedups),
        },
        notes="paper: up to 2.4x (PRank), ~60% average, GraphPIM > U-PEI",
    )


@experiment("fig09")
def fig09_exec_breakdown(scale: str | None = None) -> ExperimentResult:
    """Figure 9: normalized execution-time breakdown per workload."""
    suite = evaluation_suite(scale)
    rows = []
    for code in FIGURE7_CODES:
        report = suite[code]
        for label in ("Baseline", "GraphPIM"):
            result = report.results[label]
            breakdown = result.execution_breakdown()
            normalized = result.cycles / report.baseline.cycles
            rows.append(
                [
                    code,
                    label,
                    normalized,
                    breakdown["Atomic-inCore"] * normalized,
                    breakdown["Atomic-inCache"] * normalized,
                    breakdown["Other"] * normalized,
                ]
            )
    return ExperimentResult(
        experiment_id="fig09",
        title="Execution time breakdown normalized to baseline",
        headers=[
            "workload",
            "system",
            "normalized_time",
            "Atomic-inCore",
            "Atomic-inCache",
            "Other",
        ],
        rows=rows,
        notes=(
            "paper: baseline atomic share >50% for BFS/CComp/DC/PRank; "
            "in-core freeze/drain is the dominant component"
        ),
    )


@experiment("fig10")
def fig10_missrate(scale: str | None = None) -> ExperimentResult:
    """Figure 10: cache miss rate of offloading candidates."""
    suite = evaluation_suite(scale)
    rows = []
    rates = {}
    for code in FIGURE7_CODES:
        rate = suite[code].baseline.candidate_miss_rate()
        rows.append([code, rate])
        rates[code] = rate
    high = [c for c in FIGURE7_CODES if c not in ("kCore", "TC", "BC")]
    metrics = {
        "mean_high_locality_free": sum(rates[c] for c in high) / len(high),
        "kCore": rates["kCore"],
        "TC": rates["TC"],
        "BC": rates["BC"],
    }
    return ExperimentResult(
        experiment_id="fig10",
        title="Cache miss rate of offloading candidates (baseline)",
        headers=["workload", "llc_miss_rate"],
        rows=rows,
        metrics=metrics,
        notes="paper: >80% for most; kCore, TC, and BC are lower",
    )


@experiment("fig12")
def fig12_bandwidth(scale: str | None = None) -> ExperimentResult:
    """Figure 12: normalized bandwidth with request/response split."""
    suite = evaluation_suite(scale)
    rows = []
    reductions = []
    for code in FIGURE7_CODES:
        report = suite[code]
        base_req, base_resp = report.bandwidth_flits("Baseline")
        base_total = max(base_req + base_resp, 1)
        for label in ("Baseline", "U-PEI", "GraphPIM"):
            req, resp = report.bandwidth_flits(label)
            rows.append(
                [
                    code,
                    label,
                    req / base_total,
                    resp / base_total,
                    (req + resp) / base_total,
                ]
            )
            if label == "GraphPIM":
                reductions.append(1.0 - (req + resp) / base_total)
    return ExperimentResult(
        experiment_id="fig12",
        title="Normalized bandwidth consumption (request/response)",
        headers=["workload", "system", "request", "response", "total"],
        rows=rows,
        metrics={"mean_graphpim_reduction": sum(reductions) / len(reductions)},
        notes=(
            "paper: ~30% reduction for BFS/CComp/DC/SSSP/PRank, mostly "
            "from the response side; negligible for kCore and TC"
        ),
    )


@experiment("fig15")
def fig15_energy(scale: str | None = None) -> ExperimentResult:
    """Figure 15: uncore energy breakdown normalized to baseline."""
    suite = evaluation_suite(scale)
    rows = []
    reductions = []
    link_shares = []
    for code in FIGURE7_CODES:
        report = suite[code]
        base_energy = uncore_energy(report.baseline)
        for label in ("Baseline", "GraphPIM"):
            energy = uncore_energy(report.results[label])
            shares = energy.normalized_to(base_energy)
            rows.append(
                [
                    code,
                    label,
                    shares["Caches"],
                    shares["HMC Link"],
                    shares["HMC FU"],
                    shares["HMC LL"],
                    shares["HMC DRAM"],
                    sum(shares.values()),
                ]
            )
            if label == "GraphPIM":
                reductions.append(1.0 - sum(shares.values()))
        base_shares = base_energy.normalized_to(base_energy)
        hmc_total = (
            base_shares["HMC Link"]
            + base_shares["HMC FU"]
            + base_shares["HMC LL"]
            + base_shares["HMC DRAM"]
        )
        link_shares.append(base_shares["HMC Link"] / hmc_total)
    return ExperimentResult(
        experiment_id="fig15",
        title="Uncore energy breakdown normalized to baseline",
        headers=[
            "workload",
            "system",
            "Caches",
            "HMC Link",
            "HMC FU",
            "HMC LL",
            "HMC DRAM",
            "total",
        ],
        rows=rows,
        metrics={
            "mean_graphpim_reduction": sum(reductions) / len(reductions),
            "mean_link_share_of_hmc": sum(link_shares) / len(link_shares),
        },
        notes=(
            "paper: 37% average uncore-energy reduction; SerDes links "
            "~43% of HMC power"
        ),
    )


@experiment("fig16")
def fig16_model_validation(scale: str | None = None) -> ExperimentResult:
    """Figure 16: analytical model vs simulated speedups."""
    suite = evaluation_suite(scale)
    validation_rows = []
    rows = []
    for code in FIGURE7_CODES:
        report = suite[code]
        row = validate_against_simulation(
            code, report.baseline, report.results["GraphPIM"]
        )
        validation_rows.append(row)
        rows.append(
            [code, row.simulated_speedup, row.modeled_speedup, row.error]
        )
    return ExperimentResult(
        experiment_id="fig16",
        title="Analytical model vs architectural simulation",
        headers=["workload", "simulated", "modeled", "rel_error"],
        rows=rows,
        metrics={"mean_error": average_error(validation_rows)},
        notes="paper: 7.72% average error, single digits per workload",
    )
