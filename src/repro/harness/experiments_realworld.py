"""Real-world application experiments: Table VIII and Figure 17."""

from __future__ import annotations

from repro.analytical.model import (
    inputs_from_counters,
    inputs_from_simulation,
    predicted_speedup,
)
from repro.apps.datasets import bitcoin_like_graph, twitter_like_graph
from repro.apps.fraud import FraudDetection
from repro.apps.recommender import RecommenderSystem
from repro.core.presets import resolve_scale
from repro.energy.model import uncore_energy
from repro.harness.registry import ExperimentResult, experiment
from repro.sim.config import SystemConfig
from repro.sim.system import SimResult, simulate
from repro.workloads.base import WorkloadRun

#: Graph sizes for the two applications per scale.
APP_SIZES = {"tiny": 300, "small": 1_500, "paper": 3_000}

_APP_CACHE: dict[str, dict[str, tuple[WorkloadRun, dict[str, SimResult]]]] = {}


def realworld_suite(
    scale: str | None = None,
) -> dict[str, tuple[WorkloadRun, dict[str, SimResult]]]:
    """FD and RS traced and simulated under all three modes, memoized."""
    scale = resolve_scale(scale)
    if scale not in _APP_CACHE:
        size = APP_SIZES[scale]
        apps = {
            "FD": (FraudDetection(), bitcoin_like_graph(size)),
            "RS": (RecommenderSystem(), twitter_like_graph(size)),
        }
        suite = {}
        for code, (app, graph) in apps.items():
            run = app.run(graph, num_threads=16)
            results = {
                config.display_name: simulate(run.trace, config)
                for config in SystemConfig().evaluation_trio()
            }
            suite[code] = (run, results)
        _APP_CACHE[scale] = suite
    return _APP_CACHE[scale]


@experiment("tab08")
def tab08_realworld_counters(scale: str | None = None) -> ExperimentResult:
    """Table VIII: measured counters + analytical overheads for FD/RS."""
    suite = realworld_suite(scale)
    rows = []
    metrics = {}
    for code, (run, results) in suite.items():
        baseline = results["Baseline"]
        stats = baseline.core_stats
        instructions = max(stats.instructions, 1)
        mpki = baseline.mpki()["L3"]
        llc = baseline.cache_stats["L3"]
        breakdown = baseline.pipeline_breakdown()
        pim_fraction = run.stats.pim_candidate_fraction
        attributed = (
            stats.issue_cycles
            + stats.mem_stall_cycles
            + stats.atomic_incore_cycles
            + stats.atomic_incache_cycles
        )
        host_overhead = (
            stats.atomic_incore_cycles + stats.atomic_incache_cycles
        ) / max(attributed, 1e-9)
        cache_checking = stats.atomic_incache_cycles / max(attributed, 1e-9)
        rows.append(
            [
                code,
                baseline.ipc / baseline.config.num_cores,
                mpki,
                1.0 - llc.miss_rate,
                breakdown["Backend"],
                pim_fraction,
                host_overhead,
                cache_checking,
            ]
        )
        metrics[f"{code}_pim_fraction"] = pim_fraction
        metrics[f"{code}_host_overhead"] = host_overhead
    return ExperimentResult(
        experiment_id="tab08",
        title="Real-world application counters and analytical overheads",
        headers=[
            "app",
            "ipc_per_core",
            "llc_mpki",
            "llc_hit_rate",
            "backend_stall",
            "pct_pim_atomic",
            "total_host_overhead",
            "total_cache_checking",
        ],
        rows=rows,
        metrics=metrics,
        notes=(
            "paper (Xeon counters): IPC ~0.1, LLC MPKI ~21, PIM-atomic "
            "1.3%/2.9%, host overhead 17%/32%"
        ),
    )


@experiment("fig17")
def fig17_realworld(scale: str | None = None) -> ExperimentResult:
    """Figure 17: FD/RS performance and energy via the analytical model.

    As in the paper, the headline numbers come from the analytical
    model driven by measured counters; the simulated speedup of the
    scaled-down inputs is reported alongside as a cross-check.
    """
    suite = realworld_suite(scale)
    rows = []
    metrics = {}
    for code, (run, results) in suite.items():
        baseline = results["Baseline"]
        graphpim = results["GraphPIM"]
        simulated = graphpim.speedup_over(baseline)
        modeled = predicted_speedup(inputs_from_simulation(baseline))
        # Counter-driven path (what the paper does for the real apps).
        counter_inputs = inputs_from_counters(
            ipc=baseline.ipc / baseline.config.num_cores,
            atomic_fraction=run.stats.pim_candidate_fraction,
            llc_miss_rate=baseline.candidate_miss_rate(),
        )
        counter_modeled = predicted_speedup(counter_inputs)
        base_energy = uncore_energy(baseline).total
        pim_energy = uncore_energy(graphpim).total
        energy_reduction = 1.0 - pim_energy / base_energy
        rows.append(
            [code, simulated, modeled, counter_modeled, energy_reduction]
        )
        metrics[f"{code}_speedup"] = simulated
        metrics[f"{code}_energy_reduction"] = energy_reduction
    return ExperimentResult(
        experiment_id="fig17",
        title="Real-world application performance and energy",
        headers=[
            "app",
            "simulated_speedup",
            "model_speedup",
            "counter_model_speedup",
            "energy_reduction",
        ],
        rows=rows,
        metrics=metrics,
        notes=(
            "paper: FD 1.5x / RS 1.9x speedup; 32% / 48% energy reduction"
        ),
    )
