"""Static table experiments: Tables II, III, V, and VI."""

from __future__ import annotations

from repro.graph.generators import GraphSpec, ldbc_scaled_family
from repro.harness.registry import ExperimentResult, experiment
from repro.hmc.packets import FLITS_PER_TRANSACTION
from repro.pim.applicability import applicability_table, offload_target_table


@experiment("tab02")
def tab02_offload_targets() -> ExperimentResult:
    """Table II: offloading target and PIM-Atomic type per workload."""
    rows = [
        [row.workload, row.host_instruction, row.pim_atomic_type]
        for row in offload_target_table()
    ]
    return ExperimentResult(
        experiment_id="tab02",
        title="Summary of PIM offloading targets",
        headers=["workload", "offloading target", "PIM-Atomic type"],
        rows=rows,
        metrics={"num_workloads": float(len(rows))},
    )


@experiment("tab03")
def tab03_applicability() -> ExperimentResult:
    """Table III: PIM-Atomic applicability of GraphBIG workloads."""
    rows = []
    applicable_count = 0
    for row in applicability_table():
        mark = "yes" if row.applicable else "no"
        missing = row.missing_operation or "-"
        if row.needs_fp_extension:
            missing = f"{missing} (extension enables)"
        rows.append([row.category, row.workload, mark, missing])
        applicable_count += int(row.applicable)
    return ExperimentResult(
        experiment_id="tab03",
        title="PIM-Atomic applicability with GraphBIG workloads",
        headers=["category", "workload", "applicable", "missing operation"],
        rows=rows,
        metrics={"applicable": float(applicable_count)},
        notes="paper: 7 applicable of 13; FP add unlocks BC and PRank",
    )


@experiment("tab05")
def tab05_flits() -> ExperimentResult:
    """Table V: FLIT costs per HMC transaction type."""
    rows = [
        [kind.value, req, resp]
        for kind, (req, resp) in FLITS_PER_TRANSACTION.items()
    ]
    return ExperimentResult(
        experiment_id="tab05",
        title="HMC memory transaction bandwidth requirement (FLITs)",
        headers=["type", "request FLITs", "response FLITs"],
        rows=rows,
    )


@experiment("tab06")
def tab06_datasets(seed: int = 7) -> ExperimentResult:
    """Table VI: the (scaled) LDBC dataset family."""
    rows = []
    for name, graph in ldbc_scaled_family(seed=seed).items():
        spec = GraphSpec.of(name, graph, property_bytes=64)
        rows.append(
            [
                spec.name,
                spec.num_vertices,
                spec.num_edges,
                round(spec.footprint_bytes / (1024 * 1024), 2),
            ]
        )
    return ExperimentResult(
        experiment_id="tab06",
        title="Experiment datasets (scaled LDBC family)",
        headers=["name", "vertices", "edges", "footprint_MB"],
        rows=rows,
        notes=(
            "paper sweeps LDBC 1k..1M; we keep the geometric-size family "
            "shape at laptop scale (DESIGN.md, substitution table)"
        ),
    )
