"""Experiment harness: one entry point per paper table and figure.

Each experiment function regenerates the rows/series of one artifact of
the paper's evaluation section and returns an
:class:`ExperimentResult`; the ``benchmarks/`` tree wraps them in
pytest-benchmark targets, and ``examples/reproduce_all.py`` runs the
whole index.  Heavy simulations are shared through the memoized
:func:`evaluation_suite`.
"""

from repro.harness.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)
from repro.harness.suite import (
    adopt_grid_results,
    default_runner,
    evaluation_suite,
    motivation_suite,
    plain_atomics_suite,
    prime_evaluation_suite,
    prime_motivation_suite,
    prime_plain_atomics_suite,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "adopt_grid_results",
    "default_runner",
    "evaluation_suite",
    "get_experiment",
    "motivation_suite",
    "plain_atomics_suite",
    "prime_evaluation_suite",
    "prime_motivation_suite",
    "prime_plain_atomics_suite",
    "run_experiment",
]
