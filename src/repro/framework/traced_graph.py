"""Traced view over a CSR graph.

Iterating a vertex's neighbor list issues the loads a compiled program
would: two offset loads (adjacent, so usually one cache line) followed
by streaming loads of the column array.  This reproduces the paper's
"graph structure" component with its good spatial locality.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CsrGraph
from repro.memlayout.allocator import Allocation
from repro.trace.stream import ThreadTrace

#: Loop-body bookkeeping instructions charged per visited neighbor
#: (index increment, bounds compare, branch).
NEIGHBOR_LOOP_WORK = 3

#: Per-vertex bookkeeping (offset arithmetic, loop setup).
VERTEX_VISIT_WORK = 6


class TracedGraph:
    """Read-only traced accessors over an immutable CSR graph."""

    def __init__(
        self,
        graph: CsrGraph,
        offsets_alloc: Allocation,
        columns_alloc: Allocation,
        weights_alloc: Allocation | None = None,
    ):
        self.graph = graph
        self.offsets_alloc = offsets_alloc
        self.columns_alloc = columns_alloc
        self.weights_alloc = weights_alloc

    @property
    def num_vertices(self) -> int:
        """Vertex count of the wrapped graph."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the wrapped graph."""
        return self.graph.num_edges

    def degree(self, trace: ThreadTrace, vertex: int) -> int:
        """Traced degree lookup (two offset loads)."""
        trace.work(VERTEX_VISIT_WORK)
        trace.load(self.offsets_alloc.addr_of(vertex), 8)
        trace.load(self.offsets_alloc.addr_of(vertex + 1), 8)
        return self.graph.degree(vertex)

    def neighbors(self, trace: ThreadTrace, vertex: int) -> Iterator[int]:
        """Iterate neighbor ids, tracing the structure loads."""
        trace.work(VERTEX_VISIT_WORK)
        trace.load(self.offsets_alloc.addr_of(vertex), 8)
        trace.load(self.offsets_alloc.addr_of(vertex + 1), 8)
        start, end = self.graph.neighbor_slice(vertex)
        columns = self.graph.columns
        for j in range(start, end):
            trace.work(NEIGHBOR_LOOP_WORK)
            trace.load(self.columns_alloc.addr_of(j), 8)
            yield int(columns[j])

    def neighbors_with_weights(
        self, trace: ThreadTrace, vertex: int
    ) -> Iterator[tuple[int, float]]:
        """Iterate (neighbor, weight) pairs, tracing both loads."""
        if self.weights_alloc is None or self.graph.weights is None:
            raise ValueError("graph is unweighted")
        trace.work(VERTEX_VISIT_WORK)
        trace.load(self.offsets_alloc.addr_of(vertex), 8)
        trace.load(self.offsets_alloc.addr_of(vertex + 1), 8)
        start, end = self.graph.neighbor_slice(vertex)
        columns = self.graph.columns
        weights = self.graph.weights
        for j in range(start, end):
            trace.work(NEIGHBOR_LOOP_WORK)
            trace.load(self.columns_alloc.addr_of(j), 8)
            trace.load(self.weights_alloc.addr_of(j), 8)
            yield int(columns[j]), float(weights[j])

    def neighbor_array(self, vertex: int) -> np.ndarray:
        """Untraced neighbor access (result checking only)."""
        return self.graph.neighbors(vertex)
