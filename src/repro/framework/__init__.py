"""GraphBIG-like graph computing framework with trace instrumentation.

This is the "underlying graph framework" layer of the paper (Section
II-B): it provides vertex/property primitives to the workloads in
:mod:`repro.workloads` while hiding data management.  Every primitive
both *performs* its functional effect and *records* the memory accesses
a real implementation would issue, producing the traces the timing
model replays.

The single framework change GraphPIM requires — allocating graph
property through ``pmr_malloc`` — happens in
:meth:`FrameworkContext.alloc_property`.
"""

from repro.framework.context import FrameworkContext
from repro.framework.frontier import Frontier
from repro.framework.properties import PropertyTable
from repro.framework.traced_graph import TracedGraph

__all__ = [
    "FrameworkContext",
    "Frontier",
    "PropertyTable",
    "TracedGraph",
]
