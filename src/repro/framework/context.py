"""Framework execution context: threads, allocations, barriers."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.common.errors import ConfigError
from repro.graph.csr import CsrGraph
from repro.memlayout.allocator import AddressSpace, Allocation
from repro.memlayout.regions import Region
from repro.trace.stream import ThreadTrace, Trace

T = TypeVar("T")


class FrameworkContext:
    """Owns the simulated address space and per-thread trace streams.

    Workloads are written against this context: they allocate property
    tables, register the graph, partition vertex ranges over the virtual
    threads, and insert barriers between bulk-synchronous steps.
    """

    def __init__(self, num_threads: int = 16, name: str = ""):
        if num_threads < 1:
            raise ConfigError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.name = name
        self.address_space = AddressSpace()
        self.threads = [ThreadTrace(tid) for tid in range(num_threads)]
        self._barrier_counter = 0
        self._meta_scratch: Allocation | None = None
        #: Figure 4 micro-benchmark mode: property tables created through
        #: :meth:`property_table` record plain load+store pairs instead
        #: of lock-prefixed atomics.
        self.plain_atomics = False

    # ------------------------------------------------------------------
    # Allocation helpers
    # ------------------------------------------------------------------

    def alloc_property(
        self, label: str, num_elements: int, element_size: int = 8
    ) -> Allocation:
        """Allocate a graph-property array inside the PMR.

        This is the paper's ``pmr_malloc`` call site — the only
        framework modification GraphPIM needs.  Whether the PMR flag is
        honored (uncacheable + atomic offloading) is a property of the
        evaluated system configuration, not of the trace.
        """
        return self.address_space.pmr_malloc(label, num_elements, element_size)

    def alloc_meta(
        self, label: str, num_elements: int, element_size: int = 8
    ) -> Allocation:
        """Allocate cache-friendly metadata (queues, locals)."""
        return self.address_space.malloc(
            label, Region.META, num_elements, element_size
        )

    def alloc_structure(
        self, label: str, num_elements: int, element_size: int = 8
    ) -> Allocation:
        """Allocate graph-structure arrays (CSR offsets/columns)."""
        return self.address_space.malloc(
            label, Region.STRUCTURE, num_elements, element_size
        )

    def vertex_object_table(self, num_vertices: int) -> Allocation:
        """The shared vertex-object array (64 bytes per vertex).

        Object-based frameworks locate per-vertex property storage
        through the vertex object; property accessors load it first.
        One table is shared by all property tables of the same vertex
        count.
        """
        if not hasattr(self, "_vertex_objects"):
            self._vertex_objects: dict[int, Allocation] = {}
        table = self._vertex_objects.get(num_vertices)
        if table is None:
            table = self.alloc_structure(
                f"vertex.objects.{num_vertices}", num_vertices, 64
            )
            self._vertex_objects[num_vertices] = table
        return table

    def property_table(
        self,
        label: str,
        num_elements: int,
        fill_value=0,
        dtype=np.int64,
        element_size: int = 64,
        via_vertex_object: bool = True,
    ):
        """Allocate a PMR-backed :class:`PropertyTable`.

        ``element_size`` defaults to one cache line per vertex: GraphBIG
        (and object-based frameworks generally) store each vertex's
        property inside a >=64-byte vertex object, so consecutive vertex
        ids do not share lines — this is what makes property access
        irregular at line granularity (Section II-C).

        Honors the context's ``plain_atomics`` flag so workload code
        stays identical between the with- and without-atomics runs.
        """
        from repro.framework.properties import PropertyTable

        allocation = self.alloc_property(label, num_elements, element_size)
        values = np.full(num_elements, fill_value, dtype=dtype)
        object_index = (
            self.vertex_object_table(num_elements) if via_vertex_object else None
        )
        return PropertyTable(
            allocation, values, self.plain_atomics, object_index
        )

    def register_graph(self, graph: CsrGraph) -> "TracedGraph":
        """Place a CSR graph's arrays in the structure region."""
        from repro.framework.traced_graph import TracedGraph

        offsets = self.alloc_structure(
            "csr.row_offsets", graph.num_vertices + 1, 8
        )
        columns = self.alloc_structure("csr.columns", max(graph.num_edges, 1), 8)
        weights = None
        if graph.weights is not None:
            weights = self.alloc_structure(
                "csr.weights", max(graph.num_edges, 1), 8
            )
        return TracedGraph(graph, offsets, columns, weights)

    # ------------------------------------------------------------------
    # Thread / synchronization helpers
    # ------------------------------------------------------------------

    def barrier(self) -> int:
        """Insert a global barrier across all threads; returns its id."""
        barrier_id = self._barrier_counter
        self._barrier_counter += 1
        for thread in self.threads:
            thread.barrier(barrier_id)
        return barrier_id

    def partition(self, items: Sequence[T]) -> list[Sequence[T]]:
        """Stride-partition ``items`` across the virtual threads.

        Interleaved assignment spreads high-degree hub vertices across
        threads, matching the dynamic scheduling real graph frameworks
        use to avoid pathological load imbalance on power-law inputs.
        """
        return [items[tid :: self.num_threads] for tid in range(self.num_threads)]

    def parallel_for(
        self,
        items: Sequence[T],
        body: Callable[[int, ThreadTrace, T], None],
        sync: bool = True,
    ) -> None:
        """Run ``body(tid, trace, item)`` over a block partition.

        Virtual threads execute sequentially (the functional result is a
        valid linearization of the parallel execution), but each records
        onto its own trace stream, so the timing model replays them
        concurrently.  A barrier follows unless ``sync`` is False.
        """
        for tid, part in enumerate(self.partition(items)):
            trace = self.threads[tid]
            for item in part:
                body(tid, trace, item)
        if sync:
            self.barrier()

    def finish(self) -> Trace:
        """Seal the context and return the recorded trace."""
        self.barrier()
        trace = Trace(self.threads, name=self.name)
        trace.validate_barriers()
        return trace

    # ------------------------------------------------------------------
    # Metadata access shorthand
    # ------------------------------------------------------------------

    def meta_scratch_addr(self, tid: int) -> int:
        """A per-thread metadata address for local-variable traffic."""
        if self._meta_scratch is None:
            self._meta_scratch = self.alloc_meta(
                "thread.locals", self.num_threads * 8, 8
            )
        return self._meta_scratch.addr_of(tid * 8)

    @staticmethod
    def vertex_range(graph: CsrGraph) -> np.ndarray:
        """Convenience: ``arange(num_vertices)`` for partitioning."""
        return np.arange(graph.num_vertices)
