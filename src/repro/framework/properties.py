"""Traced per-vertex property tables.

A :class:`PropertyTable` pairs a functional numpy array with a simulated
allocation.  Its accessors both mutate the array and record the memory
event a real framework would issue: plain loads/stores for unshared
access, ``lock``-prefixed atomics for shared updates (the paper's
offloading candidates, Table II).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.memlayout.allocator import Allocation
from repro.trace.events import AtomicOp
from repro.trace.stream import ThreadTrace


class PropertyTable:
    """A per-vertex property array with traced access.

    Parameters
    ----------
    allocation:
        Simulated memory backing this table (usually from
        ``FrameworkContext.alloc_property``).
    values:
        Functional storage; length must match the allocation's element
        count.
    """

    def __init__(
        self,
        allocation: Allocation,
        values: np.ndarray,
        plain_atomics: bool = False,
        object_index: Allocation | None = None,
    ):
        if values.ndim != 1:
            raise ConfigError("property values must be a 1-D array")
        if len(values) != allocation.num_elements:
            raise ConfigError(
                f"allocation {allocation.label!r} holds "
                f"{allocation.num_elements} elements but got "
                f"{len(values)} values"
            )
        self.allocation = allocation
        self.values = values
        #: When set, atomic accessors record a plain load+store instead
        #: of a lock-prefixed RMW.  This is the paper's Figure 4
        #: micro-benchmark mode ("excluding the atomic operations").
        self.plain_atomics = plain_atomics
        #: Vertex-object table (structure region).  Object-based
        #: frameworks reach a vertex's property through its vertex
        #: object, so each property access is preceded by a structure
        #: load.  This traffic is cacheable in every system mode.
        self.object_index = object_index

    def _touch_object(self, trace: ThreadTrace, vertex: int) -> None:
        if self.object_index is not None:
            trace.load(self.object_index.addr_of(vertex), 8)

    def _record_atomic(
        self, trace: ThreadTrace, op: AtomicOp, vertex: int, with_return: bool
    ) -> None:
        self._touch_object(trace, vertex)
        addr = self.addr(vertex)
        if self.plain_atomics:
            trace.load(addr, self.element_size)
            trace.store(addr, self.element_size)
        else:
            trace.atomic(op, addr, self.element_size, with_return)

    @classmethod
    def zeros(
        cls, allocation: Allocation, dtype=np.int64
    ) -> "PropertyTable":
        """A table of zeros matching ``allocation``."""
        return cls(allocation, np.zeros(allocation.num_elements, dtype=dtype))

    @classmethod
    def full(
        cls, allocation: Allocation, fill_value, dtype=np.int64
    ) -> "PropertyTable":
        """A table filled with ``fill_value``."""
        return cls(
            allocation,
            np.full(allocation.num_elements, fill_value, dtype=dtype),
        )

    def addr(self, vertex: int) -> int:
        """Simulated address of ``vertex``'s property."""
        return self.allocation.addr_of(vertex)

    @property
    def element_size(self) -> int:
        """Bytes per property element."""
        return self.allocation.element_size

    # ------------------------------------------------------------------
    # Plain (non-atomic) access
    # ------------------------------------------------------------------

    def read(self, trace: ThreadTrace, vertex: int):
        """Traced plain load of a property value."""
        self._touch_object(trace, vertex)
        trace.load(self.addr(vertex), self.element_size)
        return self.values[vertex]

    def write(self, trace: ThreadTrace, vertex: int, value) -> None:
        """Traced plain store of a property value."""
        self._touch_object(trace, vertex)
        trace.store(self.addr(vertex), self.element_size)
        self.values[vertex] = value

    def peek(self, vertex: int):
        """Untraced read (for assertions and result extraction)."""
        return self.values[vertex]

    # ------------------------------------------------------------------
    # Atomic read-modify-write access (offloading candidates)
    # ------------------------------------------------------------------

    def cas(
        self, trace: ThreadTrace, vertex: int, expected, desired
    ) -> bool:
        """``lock cmpxchg``: swap to ``desired`` iff current == expected.

        Returns whether the swap happened (the consumed return value —
        BFS's branch depends on it, Figure 8).
        """
        self._record_atomic(trace, AtomicOp.CAS, vertex, True)
        if self.values[vertex] == expected:
            self.values[vertex] = desired
            return True
        return False

    def fetch_add(
        self, trace: ThreadTrace, vertex: int, delta, with_return: bool = False
    ):
        """``lock add``: integer add; old value returned if consumed."""
        self._record_atomic(trace, AtomicOp.ADD, vertex, with_return)
        old = self.values[vertex]
        self.values[vertex] = old + delta
        return old

    def fetch_sub(
        self, trace: ThreadTrace, vertex: int, delta, with_return: bool = False
    ):
        """``lock sub``: integer subtract; old value returned if consumed."""
        self._record_atomic(trace, AtomicOp.SUB, vertex, with_return)
        old = self.values[vertex]
        self.values[vertex] = old - delta
        return old

    def swap(self, trace: ThreadTrace, vertex: int, value):
        """``lock xchg``: unconditional swap; returns the old value."""
        self._record_atomic(trace, AtomicOp.SWAP, vertex, True)
        old = self.values[vertex]
        self.values[vertex] = value
        return old

    def cas_improve_min(self, trace: ThreadTrace, vertex: int, candidate) -> bool:
        """The ``lock cmpxchg`` improvement loop of SSSP/CComp (Table II).

        A thread that read a stale (round-start) value retries the CAS
        until the stored value is <= its candidate; hardware-wise this
        is one or more ``lock cmpxchg`` instructions, which we record as
        a single offloadable CAS event.  Returns whether the stored
        value decreased.
        """
        self._record_atomic(trace, AtomicOp.CAS, vertex, True)
        if candidate < self.values[vertex]:
            self.values[vertex] = candidate
            return True
        return False

    def atomic_min(self, trace: ThreadTrace, vertex: int, candidate) -> bool:
        """Atomic min (host CAS loop; HMC ``CAS-if-less``).

        Returns whether the stored value decreased.
        """
        self._record_atomic(trace, AtomicOp.MIN, vertex, True)
        if candidate < self.values[vertex]:
            self.values[vertex] = candidate
            return True
        return False

    def atomic_max(self, trace: ThreadTrace, vertex: int, candidate) -> bool:
        """Atomic max (host CAS loop; HMC ``CAS-if-greater``)."""
        self._record_atomic(trace, AtomicOp.MAX, vertex, True)
        if candidate > self.values[vertex]:
            self.values[vertex] = candidate
            return True
        return False

    def fp_add(self, trace: ThreadTrace, vertex: int, delta) -> None:
        """Atomic floating-point add.

        On the host this is a CAS loop; it maps to the paper's proposed
        FP-add PIM extension (Section III-C).
        """
        self._record_atomic(trace, AtomicOp.FP_ADD, vertex, False)
        self.values[vertex] = self.values[vertex] + delta

    def bitwise_or(self, trace: ThreadTrace, vertex: int, mask):
        """``lock or``: set bits; no return value consumed."""
        self._record_atomic(trace, AtomicOp.OR, vertex, False)
        self.values[vertex] = self.values[vertex] | mask

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"PropertyTable(label={self.allocation.label!r}, "
            f"n={len(self.values)}, pmr={self.allocation.in_pmr})"
        )
