"""Traced work queues (frontiers).

Frontiers are the "meta data" component of the paper's breakdown:
small, sequentially accessed, cache friendly.  Pushes and pops issue
metadata stores/loads against a circular simulated buffer.
"""

from __future__ import annotations

from repro.framework.context import FrameworkContext
from repro.trace.stream import ThreadTrace

#: Queue bookkeeping instructions per push/pop (pointer update, wrap).
QUEUE_OP_WORK = 2


class Frontier:
    """A traced FIFO of vertex ids backed by a metadata allocation."""

    def __init__(
        self, ctx: FrameworkContext, label: str, capacity_hint: int = 1024
    ):
        capacity = max(capacity_hint, 16)
        self._alloc = ctx.alloc_meta(label, capacity, 8)
        self._capacity = capacity
        self._items: list[int] = []
        self._read = 0
        self._push_cursor = 0
        self._pop_cursor = 0

    def push(self, trace: ThreadTrace, vertex: int) -> None:
        """Append a vertex (traced metadata store)."""
        trace.work(QUEUE_OP_WORK)
        slot = self._push_cursor % self._capacity
        trace.store(self._alloc.addr_of(slot), 8)
        self._push_cursor += 1
        self._items.append(vertex)

    def drain(self, trace: ThreadTrace) -> list[int]:
        """Pop everything (traced metadata loads), FIFO order."""
        drained = []
        while self._read < len(self._items):
            trace.work(QUEUE_OP_WORK)
            slot = self._pop_cursor % self._capacity
            trace.load(self._alloc.addr_of(slot), 8)
            self._pop_cursor += 1
            drained.append(self._items[self._read])
            self._read += 1
        self._items = []
        self._read = 0
        return drained

    def snapshot(self) -> list[int]:
        """Untraced view of queued items (assertions only)."""
        return self._items[self._read :]

    def __len__(self) -> int:
        return len(self._items) - self._read

    def __bool__(self) -> bool:
        return self._read < len(self._items)
