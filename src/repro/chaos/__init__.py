"""Chaos-injection harness for the runner's worker fleet.

Public surface:

- :class:`~repro.chaos.plan.ChaosPlan` — frozen, seeded,
  JSON-round-trippable description of the faults to inject (worker
  kills, heartbeat stalls, shm/cache corruption, journal tears).
- :func:`~repro.chaos.hooks.corrupt_cache_entries` /
  :func:`~repro.chaos.hooks.truncate_journal` — the parent-side
  injection points (worker-side hooks live in
  :mod:`repro.runner.pool`).

Chaos plans ride :class:`~repro.runner.spec.RunnerConfig` (CLI:
``repro run --chaos "kill=0:1,seed=7"``) and are excluded from cache
identity: the invariant under every plan is that the grid completes
with results bit-identical to a chaos-free serial run.
"""

from repro.chaos.hooks import corrupt_cache_entries, truncate_journal
from repro.chaos.plan import ChaosPlan

__all__ = ["ChaosPlan", "corrupt_cache_entries", "truncate_journal"]
