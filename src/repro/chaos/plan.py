"""Serializable chaos-injection plans for the experiment runner.

The PR 3 :class:`~repro.faults.plan.FaultPlan` idiom pointed at our own
infrastructure instead of the simulated HMC links: a :class:`ChaosPlan`
describes *what goes wrong in the worker fleet* — a worker killed after
K jobs, heartbeats silently stalled, cache entries or shared-memory
segments corrupted, the checkpoint journal torn mid-record — so the
supervision machinery can be exercised deterministically from tests and
``scripts/check.sh``.

Plans are frozen, hashable, and JSON-round-trippable, and every random
choice (which bytes to flip) derives from ``seed`` through
:func:`~repro.common.rng.derive_seed`, so a chaos run is reproducible
bit-for-bit.  Plans ride on :class:`~repro.runner.spec.RunnerConfig`
(execution strategy, like ``engine`` or ``jobs``) and therefore never
touch cache keys or spec keys: the whole point is that a chaos-ridden
grid must produce results byte-identical to the serial reference.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded description of injected infrastructure faults."""

    #: Root seed for every byte-flip decision the plan makes.
    seed: int = 0
    #: Pool worker index to kill (-1 disables the kill fault).  Worker
    #: ids are assigned in spawn order and never reused, so a
    #: replacement worker does not inherit the curse.
    kill_worker: int = -1
    #: The doomed worker exits after completing this many jobs (0 =
    #: dies on its first job).
    kill_after_jobs: int = 0
    #: When True the kill fires *after* the worker published its trace
    #: segment, exercising the resume path (a surviving worker attaches
    #: the orphaned segment instead of re-tracing).
    kill_after_trace: bool = False
    #: Pool worker index whose heartbeat thread goes silent (-1
    #: disables the stall fault).
    stall_worker: int = -1
    #: The stall starts once the worker has completed this many jobs.
    stall_after_jobs: int = 0
    #: How long the heartbeat thread sleeps; anything beyond
    #: ``heartbeat_timeout_s`` reads as a hang to the supervisor.
    stall_seconds: float = 0.0
    #: Flip payload bytes in every published shm segment, forcing the
    #: CRC check to fail and the npz fallback to engage.
    corrupt_shm: bool = False
    #: Flip bytes in up to this many result-cache object files before
    #: the grid starts (corrupt entries must read as misses).
    corrupt_cache_entries: int = 0
    #: Truncate this many bytes off the checkpoint journal's tail after
    #: the grid finishes, simulating a torn final write; ``--resume``
    #: must still complete.
    truncate_journal_bytes: int = 0
    #: Workload code whose jobs crash any worker that executes them
    #: (the poisoned-spec scenario: two dead workers → quarantine).
    poison_workload: str = ""
    #: Fleet fault (PR 10): a ``repro worker`` abandons its current
    #: lease batch — stops heartbeating and executing without
    #: deregistering, as a SIGKILLed worker would — once it has leased
    #: more than this many jobs in total (-1 disables the fault).  The
    #: broker's lease expiry must redispatch the abandoned jobs.
    lease_abandon_after: int = -1

    def __post_init__(self) -> None:
        if self.kill_worker < -1:
            raise ConfigError("kill_worker must be >= 0 or -1 (off)")
        if self.kill_after_jobs < 0:
            raise ConfigError("kill_after_jobs must be >= 0")
        if self.stall_worker < -1:
            raise ConfigError("stall_worker must be >= 0 or -1 (off)")
        if self.stall_after_jobs < 0:
            raise ConfigError("stall_after_jobs must be >= 0")
        if self.stall_seconds < 0:
            raise ConfigError("stall_seconds must be >= 0")
        if self.stall_worker >= 0 and self.stall_seconds <= 0:
            raise ConfigError(
                "stall_worker needs stall_seconds > 0 to have any effect"
            )
        if self.corrupt_cache_entries < 0:
            raise ConfigError("corrupt_cache_entries must be >= 0")
        if self.truncate_journal_bytes < 0:
            raise ConfigError("truncate_journal_bytes must be >= 0")
        if self.lease_abandon_after < -1:
            raise ConfigError(
                "lease_abandon_after must be >= 0 or -1 (off)"
            )

    @property
    def enabled(self) -> bool:
        """True when the plan can actually perturb a grid."""
        return (
            self.kill_worker >= 0
            or self.stall_worker >= 0
            or self.corrupt_shm
            or self.corrupt_cache_entries > 0
            or self.truncate_journal_bytes > 0
            or bool(self.poison_workload)
            or self.lease_abandon_after >= 0
        )

    def rng(self, *labels: object) -> random.Random:
        """Deterministic child stream for one chaos decision site."""
        return random.Random(derive_seed(self.seed, "chaos", *labels))

    # ------------------------------------------------------------------
    # Serialization (CLI spec, JSON round trip)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat scalar mapping; round-trips via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        return cls(**data)

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse a CLI chaos spec like ``kill=0:1,shm=1,seed=7``.

        Keys: ``kill`` (``worker[:after_jobs[:trace]]`` — a trailing
        ``:trace`` delays the kill until the trace is published),
        ``stall`` (``worker:after_jobs:seconds``), ``shm`` (0/1),
        ``cache`` (entry count), ``journal`` (bytes), ``poison``
        (workload code), ``lease`` (jobs leased before a fleet worker
        abandons its batch), ``seed``.
        """
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigError(
                    f"chaos spec entry {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            try:
                if key == "kill":
                    fields = raw.split(":")
                    kwargs["kill_worker"] = int(fields[0])
                    if len(fields) > 1 and fields[1]:
                        kwargs["kill_after_jobs"] = int(fields[1])
                    if len(fields) > 2:
                        if fields[2] != "trace":
                            raise ConfigError(
                                f"kill modifier {fields[2]!r} unknown "
                                "(only 'trace')"
                            )
                        kwargs["kill_after_trace"] = True
                elif key == "stall":
                    worker, _, rest = raw.partition(":")
                    after, _, seconds = rest.partition(":")
                    kwargs["stall_worker"] = int(worker)
                    kwargs["stall_after_jobs"] = int(after or 0)
                    kwargs["stall_seconds"] = float(seconds or 0.0)
                elif key == "shm":
                    kwargs["corrupt_shm"] = bool(int(raw))
                elif key == "cache":
                    kwargs["corrupt_cache_entries"] = int(raw)
                elif key == "journal":
                    kwargs["truncate_journal_bytes"] = int(raw)
                elif key == "poison":
                    kwargs["poison_workload"] = raw
                elif key == "lease":
                    kwargs["lease_abandon_after"] = int(raw)
                elif key == "seed":
                    kwargs["seed"] = int(raw)
                else:
                    raise ConfigError(
                        f"unknown chaos spec key {key!r}; known: kill, "
                        "stall, shm, cache, journal, poison, lease, "
                        "seed"
                    )
            except ValueError as error:
                raise ConfigError(
                    f"bad value for chaos spec key {key!r}: {raw!r}"
                ) from error
        return cls(**kwargs)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        if not self.enabled:
            return "chaos-free"
        parts = [f"seed={self.seed}"]
        if self.kill_worker >= 0:
            when = f"after {self.kill_after_jobs} job(s)"
            if self.kill_after_trace:
                when += " post-trace"
            parts.append(f"kill worker {self.kill_worker} {when}")
        if self.stall_worker >= 0:
            parts.append(
                f"stall worker {self.stall_worker} heartbeats "
                f"{self.stall_seconds:g}s after "
                f"{self.stall_after_jobs} job(s)"
            )
        if self.corrupt_shm:
            parts.append("corrupt shm segments")
        if self.corrupt_cache_entries:
            parts.append(
                f"corrupt {self.corrupt_cache_entries} cache entry(ies)"
            )
        if self.truncate_journal_bytes:
            parts.append(
                f"truncate journal by {self.truncate_journal_bytes}B"
            )
        if self.poison_workload:
            parts.append(f"poison workload {self.poison_workload}")
        if self.lease_abandon_after >= 0:
            parts.append(
                f"abandon lease after {self.lease_abandon_after} "
                f"leased job(s)"
            )
        return "; ".join(parts)
