"""Parent-side chaos hooks: deliberate damage to on-disk state.

These are the injection points a :class:`~repro.chaos.plan.ChaosPlan`
drives from the supervising process (the worker-side hooks — kill,
heartbeat stall — live in :mod:`repro.runner.pool` where the worker
loop runs).  Each hook logs a structured ``chaos_*`` event so a chaos
run's journal of self-inflicted damage is auditable.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.chaos.plan import ChaosPlan
from repro.obs.logs import get_logger

_log = get_logger("chaos")


def corrupt_cache_entries(cache_dir: str, plan: ChaosPlan) -> int:
    """Flip bytes in up to ``plan.corrupt_cache_entries`` cache objects.

    Targets the oldest entries in sorted-path order so the choice is
    stable for a given cache population; byte offsets derive from the
    plan seed.  Returns the number of files damaged.  The cache must
    treat every damaged entry as a miss and regenerate it.
    """
    if plan.corrupt_cache_entries <= 0:
        return 0
    objects = Path(cache_dir) / "objects"
    if not objects.is_dir():
        return 0
    victims = sorted(
        path
        for path in objects.iterdir()
        if path.is_file() and path.suffix == ".json"
    )[: plan.corrupt_cache_entries]
    damaged = 0
    for path in victims:
        rng = plan.rng("cache", path.name)
        try:
            data = bytearray(path.read_bytes())
            if not data:
                continue
            for _ in range(4):
                index = rng.randrange(len(data))
                data[index] ^= 0xFF
            path.write_bytes(bytes(data))
        except OSError:  # pragma: no cover - cache raced away
            continue
        damaged += 1
        _log.warning(
            "chaos: corrupted cache entry %s",
            path.name,
            extra={"event": "chaos_cache_corrupted", "entry": path.name},
        )
    return damaged


def truncate_journal(path: str, nbytes: int) -> bool:
    """Chop ``nbytes`` off the journal tail (a simulated torn write).

    Returns False when the journal is missing or shorter than the cut.
    The torn-line-tolerant readers must still recover every record
    before the tear.
    """
    if nbytes <= 0 or not os.path.exists(path):
        return False
    size = os.path.getsize(path)
    if size == 0:
        return False
    keep = max(0, size - nbytes)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    _log.warning(
        "chaos: truncated journal %s to %d byte(s)",
        path,
        keep,
        extra={
            "event": "chaos_journal_truncated",
            "path": path,
            "kept_bytes": keep,
            "cut_bytes": size - keep,
        },
    )
    return True
