"""Analytical CPI model (Equations 1 and 2 of the paper).

The model splits cycles-per-instruction into a non-atomic component and
an atomic-overhead component::

    CPI_total    = CPI_other * (1 - f_overlap) + r_atomic * AOH     (1)
    AOH_baseline = Lat_cache + Miss_atomic * Lat_mem + C_core       (2)
    AOH_graphpim = Lat_PIM

``r_atomic`` is the atomic-instruction rate, ``Miss_atomic`` the cache
miss rate of atomics, ``C_core`` the in-core freeze/drain overhead, and
``Lat_*`` average latencies.  The paper feeds it hardware-counter
measurements for graphs too large to simulate (Table VIII, Figure 17)
after validating it against simulation (Figure 16); we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.system import SimResult


def nominal_hmc_read_latency(config: SystemConfig) -> float:
    """Unloaded HMC read round trip, host-core cycles."""
    hmc = config.hmc
    return (
        2 * hmc.link_latency
        + 2 * hmc.vault_overhead
        + hmc.tRCD
        + hmc.tCL
        + hmc.burst
    )


def nominal_pim_latency(config: SystemConfig) -> float:
    """Unloaded PIM-Atomic round trip including the offload issue cost."""
    hmc = config.hmc
    return (
        2 * hmc.link_latency
        + 2 * hmc.vault_overhead
        + hmc.tRCD
        + hmc.tCL
        + hmc.fu_op
        + config.offload_issue_cycles
    )


@dataclass(frozen=True)
class AnalyticalInputs:
    """Everything Equations 1-2 need."""

    #: CPI of non-atomic instructions (memory stalls included).
    cpi_other: float
    #: Fraction of atomic latency hidden under other work (Eq. 1's
    #: overlap term; the paper argues it is small for graph codes).
    overlap: float
    #: Atomic instructions per instruction.
    r_atomic: float
    #: LLC miss rate of the atomics' target lines.
    miss_atomic: float
    #: Average cache-walk latency paid by a host atomic.
    lat_cache: float
    #: Average memory latency for an atomic LLC miss.
    lat_mem: float
    #: Average PIM-Atomic round trip (offloaded path).
    lat_pim: float
    #: In-core atomic overhead (pipeline freeze + write-buffer drain).
    core_overhead: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap < 1.0:
            raise ConfigError("overlap must be in [0, 1)")
        if self.r_atomic < 0 or self.miss_atomic < 0 or self.miss_atomic > 1:
            raise ConfigError("rates must be valid fractions")


def baseline_cpi(inputs: AnalyticalInputs) -> float:
    """Equation 1 with the baseline atomic-overhead term (Eq. 2)."""
    aoh = (
        inputs.lat_cache
        + inputs.miss_atomic * inputs.lat_mem
        + inputs.core_overhead
    )
    return inputs.cpi_other * (1.0 - inputs.overlap) + inputs.r_atomic * aoh


def graphpim_cpi(inputs: AnalyticalInputs) -> float:
    """Equation 1 with the GraphPIM atomic-overhead term.

    Offloaded atomics skip the cache walk, coherence, and in-core
    freeze; they pay only the PIM round trip.
    """
    return (
        inputs.cpi_other * (1.0 - inputs.overlap)
        + inputs.r_atomic * inputs.lat_pim
    )


def predicted_speedup(inputs: AnalyticalInputs) -> float:
    """Modeled GraphPIM speedup over the baseline."""
    return baseline_cpi(inputs) / graphpim_cpi(inputs)


def inputs_from_simulation(
    baseline: SimResult, overlap: float = 0.0
) -> AnalyticalInputs:
    """Extract the model inputs from a baseline simulation.

    This mirrors the paper's counter-collection step: the atomic rate,
    miss rate, and per-atomic overhead are measured quantities (all
    observable with hardware performance counters), while the GraphPIM
    side — the part the model actually predicts — uses the machine's
    nominal PIM latency.  The measured average atomic overhead is
    folded into ``core_overhead`` so Equation 2 reconstructs it from
    the same cache/memory latency terms the paper uses.
    """
    stats = baseline.core_stats
    instructions = max(stats.instructions, 1)
    attributed = (
        stats.issue_cycles
        + stats.mem_stall_cycles
        + stats.atomic_incore_cycles
        + stats.atomic_incache_cycles
    )
    atomic_cycles = stats.atomic_incore_cycles + stats.atomic_incache_cycles
    cpi_other = (attributed - atomic_cycles) / instructions
    r_atomic = stats.host_atomics / instructions
    config = baseline.config
    walk = config.l1.latency + config.l2.latency + config.l3.latency
    miss_atomic = baseline.candidate_miss_rate()
    lat_mem = nominal_hmc_read_latency(config)
    if stats.host_atomics:
        measured_aoh = atomic_cycles / stats.host_atomics
        # Residual beyond the cache-walk and memory terms of Eq. 2 —
        # the measured in-core freeze/drain/serialization component.
        core_overhead = max(
            measured_aoh - walk - miss_atomic * lat_mem, 0.0
        )
    else:
        core_overhead = (
            config.atomic_freeze_cycles + CACHE_COHERENCE_ALLOWANCE
        )
    return AnalyticalInputs(
        cpi_other=cpi_other,
        overlap=overlap,
        r_atomic=r_atomic,
        miss_atomic=miss_atomic,
        lat_cache=walk,
        lat_mem=lat_mem,
        lat_pim=nominal_pim_latency(config),
        core_overhead=core_overhead,
    )


def inputs_from_counters(
    ipc: float,
    atomic_fraction: float,
    llc_miss_rate: float,
    config: SystemConfig | None = None,
    overlap: float = 0.0,
) -> AnalyticalInputs:
    """Build model inputs from raw counter values (Table VIII path).

    ``ipc`` is the measured per-core IPC of the full application;
    the baseline atomic overhead is *subtracted out* of its CPI to
    estimate ``cpi_other``, exactly as the paper's analytical study of
    the fraud-detection and recommender applications does.
    """
    if ipc <= 0:
        raise ConfigError("ipc must be positive")
    config = config or SystemConfig()
    walk = config.l1.latency + config.l2.latency + config.l3.latency
    cpi_total = 1.0 / ipc
    aoh_base = (
        walk
        + llc_miss_rate * nominal_hmc_read_latency(config)
        + config.atomic_freeze_cycles
        + CACHE_COHERENCE_ALLOWANCE
    )
    cpi_other = max(cpi_total - atomic_fraction * aoh_base, 0.05)
    return AnalyticalInputs(
        cpi_other=cpi_other,
        overlap=overlap,
        r_atomic=atomic_fraction,
        miss_atomic=llc_miss_rate,
        lat_cache=walk,
        lat_mem=nominal_hmc_read_latency(config),
        lat_pim=nominal_pim_latency(config),
        core_overhead=config.atomic_freeze_cycles
        + CACHE_COHERENCE_ALLOWANCE,
    )


#: Average coherence-invalidation allowance folded into C_core.
CACHE_COHERENCE_ALLOWANCE = 12.0
