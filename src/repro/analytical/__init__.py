"""The paper's analytical CPI model (Section IV-B5, Equations 1-2)."""

from repro.analytical.model import (
    AnalyticalInputs,
    baseline_cpi,
    graphpim_cpi,
    inputs_from_counters,
    inputs_from_simulation,
    nominal_hmc_read_latency,
    nominal_pim_latency,
    predicted_speedup,
)
from repro.analytical.validation import ValidationRow, validate_against_simulation

__all__ = [
    "AnalyticalInputs",
    "ValidationRow",
    "baseline_cpi",
    "graphpim_cpi",
    "inputs_from_counters",
    "inputs_from_simulation",
    "nominal_hmc_read_latency",
    "nominal_pim_latency",
    "predicted_speedup",
    "validate_against_simulation",
]
