"""Model-vs-simulation validation (Figure 16).

The paper validates the analytical model by comparing its speedup
predictions against architectural simulation for every workload,
reporting a 7.72% average error.  :func:`validate_against_simulation`
performs the same comparison on our stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.model import (
    inputs_from_simulation,
    predicted_speedup,
)
from repro.sim.system import SimResult


@dataclass(frozen=True)
class ValidationRow:
    """One workload's model-vs-simulation comparison."""

    workload: str
    simulated_speedup: float
    modeled_speedup: float

    @property
    def error(self) -> float:
        """Relative error of the model against simulation."""
        return abs(self.modeled_speedup - self.simulated_speedup) / (
            self.simulated_speedup
        )


def validate_against_simulation(
    workload: str,
    baseline: SimResult,
    graphpim: SimResult,
    overlap: float = 0.0,
) -> ValidationRow:
    """Compare the analytical prediction with the simulated speedup."""
    inputs = inputs_from_simulation(baseline, overlap=overlap)
    return ValidationRow(
        workload=workload,
        simulated_speedup=graphpim.speedup_over(baseline),
        modeled_speedup=predicted_speedup(inputs),
    )


def average_error(rows: list[ValidationRow]) -> float:
    """Mean relative error across workloads (paper: 7.72%)."""
    if not rows:
        return 0.0
    return sum(row.error for row in rows) / len(rows)
