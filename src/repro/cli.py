"""Command-line interface.

::

    python -m repro workloads
    python -m repro run BFS --vertices 2000 --threads 16
    python -m repro trace DC --vertices 2000 -o dc.npz
    python -m repro simulate dc.npz --mode graphpim
    python -m repro experiment fig07 --scale small
"""

from __future__ import annotations

import argparse
import sys

from repro.core.api import GraphPimSystem
from repro.core.presets import workload_params
from repro.graph.generators import ldbc_like_graph
from repro.sim.config import Mode, SystemConfig
from repro.sim.system import simulate
from repro.trace.io import load_trace, save_trace
from repro.workloads.registry import all_workloads, get_workload

_MODE_CTORS = {
    "baseline": SystemConfig.baseline,
    "upei": SystemConfig.upei,
    "graphpim": SystemConfig.graphpim,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPIM (HPCA 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the GraphBIG workloads")

    run = sub.add_parser(
        "run", help="trace a workload and simulate all three systems"
    )
    run.add_argument("workload", help="workload code, e.g. BFS")
    run.add_argument("--vertices", type=int, default=2_000)
    run.add_argument("--threads", type=int, default=16)
    run.add_argument("--seed", type=int, default=7)

    trace = sub.add_parser("trace", help="trace a workload to a .npz file")
    trace.add_argument("workload")
    trace.add_argument("--vertices", type=int, default=2_000)
    trace.add_argument("--threads", type=int, default=16)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("-o", "--output", required=True)

    sim = sub.add_parser("simulate", help="replay a saved trace")
    sim.add_argument("trace_file")
    sim.add_argument(
        "--mode", choices=sorted(_MODE_CTORS), default="graphpim"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("experiment_id", help="e.g. fig07 or tab03")
    experiment.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default="small"
    )
    return parser


def _cmd_workloads(_args) -> int:
    print(f"{'code':8s} {'category':8s} {'applicable':10s} name")
    for workload in all_workloads():
        applicable = "yes" if workload.applicable else "no"
        if workload.needs_fp_extension:
            applicable = "fp-ext"
        print(
            f"{workload.code:8s} {workload.category.value:8s} "
            f"{applicable:10s} {workload.name}"
        )
    return 0


def _make_graph(args):
    weighted = args.workload == "SSSP"
    return ldbc_like_graph(args.vertices, seed=args.seed, weighted=weighted)


def _cmd_run(args) -> int:
    get_workload(args.workload)  # fail fast on unknown codes
    graph = _make_graph(args)
    system = GraphPimSystem(num_threads=args.threads)
    report = system.evaluate(
        args.workload, graph, **workload_params(args.workload)
    )
    print(report.summary())
    return 0


def _cmd_trace(args) -> int:
    workload = get_workload(args.workload)
    graph = _make_graph(args)
    run = workload.run(
        graph, num_threads=args.threads, **workload_params(args.workload)
    )
    save_trace(run.trace, args.output)
    print(
        f"wrote {run.trace.num_events} events "
        f"({run.trace.num_threads} threads) to {args.output}"
    )
    return 0


def _cmd_simulate(args) -> int:
    trace = load_trace(args.trace_file)
    config = _MODE_CTORS[args.mode]()
    result = simulate(trace, config)
    print(f"mode        : {config.display_name}")
    print(f"cycles      : {result.cycles:.0f}")
    print(f"instructions: {result.instructions}")
    print(f"ipc/core    : {result.ipc / trace.num_threads:.4f}")
    print(f"offloaded   : {result.core_stats.offloaded_atomics}")
    print(f"host atomics: {result.core_stats.host_atomics}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import run_experiment

    static = {"tab02", "tab03", "tab05", "tab06"}
    if args.experiment_id in static:
        result = run_experiment(args.experiment_id)
    else:
        result = run_experiment(args.experiment_id, scale=args.scale)
    print(result.render())
    return 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
