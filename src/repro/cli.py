"""Command-line interface.

::

    python -m repro workloads
    python -m repro run                  # full Figure-7 grid, cached
    python -m repro run --jobs 4 --json  # parallel grid, JSON metrics
    python -m repro run BFS --vertices 2000 --threads 16
    python -m repro run --faults ber=1e-6,seed=7   # fault injection
    python -m repro run --resume         # skip checkpointed jobs
    python -m repro cache                # result-cache statistics
    python -m repro cache --clear
    python -m repro cache --verify       # quarantine corrupt entries
    python -m repro cache --prune --max-mb 256   # LRU size bound
    python -m repro serve --port 8477    # simulation-as-a-service
    python -m repro submit BFS --scale tiny      # query a service
    python -m repro status <job-id>
    python -m repro trace DC --vertices 2000 -o dc.npz
    python -m repro simulate dc.npz --mode graphpim
    python -m repro experiment fig07 --scale small
    python -m repro faults sweep --scale tiny
    python -m repro faults show ber=1e-6,drop=1e-4
    python -m repro lint dc.npz
    python -m repro lint graphpim
    python -m repro obs timeline BFS -o trace.json   # Perfetto export
    python -m repro obs metrics BFS --diff baseline graphpim
    python -m repro run --log-level info --log-json  # structured logs

``repro run`` without a workload executes the evaluation grid through
the experiment runner: jobs fan out over a process pool (``--jobs``,
``--no-parallel``) and results persist in a content-addressed cache
(``.repro_cache/``), so a repeated invocation performs zero
simulations.

Exit codes: 0 on success, 1 when ``lint`` reports ERROR findings, 2 on
invalid invocations (unknown subcommand/workload, bad input file) — so
CI can gate on any of them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.common.errors import ReproError
from repro.core.api import GraphPimSystem
from repro.core.presets import workload_params
from repro.graph.generators import ldbc_like_graph
from repro.sim.config import Mode, SystemConfig
from repro.sim.system import simulate
from repro.trace.io import load_trace, save_trace
from repro.workloads.registry import all_workloads, get_workload

_MODE_CTORS = {
    "baseline": SystemConfig.baseline,
    "upei": SystemConfig.upei,
    "graphpim": SystemConfig.graphpim,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPIM (HPCA 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the GraphBIG workloads")

    run = sub.add_parser(
        "run",
        help="run one workload, or (with no workload) the cached "
        "parallel evaluation grid",
    )
    run.add_argument(
        "workload",
        nargs="?",
        help="workload code, e.g. BFS; omit to run the Figure-7 grid "
        "through the experiment runner",
    )
    run.add_argument("--vertices", type=int, default=2_000)
    run.add_argument("--threads", type=int, default=16)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--scale",
        choices=("tiny", "small", "paper"),
        default=None,
        help="grid mode: experiment scale (default: REPRO_SCALE or small)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="grid mode: worker processes (default: all CPUs)",
    )
    run.add_argument(
        "--no-parallel",
        action="store_true",
        help="grid mode: run every job in-process",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="grid mode: static-analysis pre-flight on every trace",
    )
    run.add_argument(
        "--lint-baseline",
        metavar="FILE",
        default=None,
        help="grid mode: baseline file for the strict pre-flight; "
        "findings frozen there do not abort the grid",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="grid mode: result-cache root (default: .repro_cache)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="grid mode: disable the persistent result cache",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="grid mode: machine-readable runner report + metrics",
    )
    run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-injection plan, e.g. ber=1e-6,drop=1e-4,seed=7 "
        "(see `repro faults show`)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="grid mode: per-job wall-clock budget (pool workers only)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="grid mode: resubmissions of a timed-out job (with "
        "exponential backoff) before recording a failure",
    )
    run.add_argument(
        "--allow-partial",
        action="store_true",
        help="grid mode: report failed jobs instead of aborting the grid",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="grid mode: skip jobs checkpointed as completed in the "
        "cache root's journal (after a killed run)",
    )
    run.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="grid mode: emit structured run logs on stderr at this "
        "level (default: silent)",
    )
    run.add_argument(
        "--log-json",
        action="store_true",
        help="grid mode: format run logs as JSON lines (implies "
        "--log-level info unless set)",
    )
    run.add_argument(
        "--engine",
        choices=("auto", "vectorized", "legacy"),
        default=None,
        help="simulation engine: auto (batch kernel with per-trace "
        "fallback), vectorized, or legacy (the per-event reference "
        "interpreter); default: REPRO_ENGINE or auto",
    )
    run.add_argument(
        "--pool",
        choices=("supervised", "executor"),
        default=None,
        help="grid mode: parallel dispatch strategy — supervised "
        "(heartbeat-monitored workers with crash recovery, the "
        "default) or executor (plain ProcessPoolExecutor)",
    )
    run.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="grid mode: kill and replace a supervised worker whose "
        "heartbeat goes silent for this long (default: 30)",
    )
    run.add_argument(
        "--max-pool-restarts",
        type=int,
        default=None,
        metavar="N",
        help="grid mode: replacement workers the supervisor may spawn "
        "before degrading to in-process execution (default: 3)",
    )
    run.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="grid mode: chaos-injection plan for resilience testing, "
        "e.g. kill=0:1,seed=7 (kill/stall/shm/cache/journal/poison)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="grid mode: live one-line progress on stderr fed by "
        "in-flight simulation snapshots (observability only; never "
        "part of cache identity)",
    )
    run.add_argument(
        "--progress-interval",
        type=int,
        default=20_000,
        metavar="EVENTS",
        help="with --progress: snapshot cadence in retired simulation "
        "events (default: 20000)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: .repro_cache)",
    )
    cache.add_argument(
        "--clear", action="store_true", help="delete every cached result"
    )
    cache.add_argument(
        "--verify",
        action="store_true",
        help="scan all entries; quarantine corrupt or stale ones",
    )
    cache.add_argument(
        "--prune",
        action="store_true",
        help="evict least-recently-used entries until the cache fits "
        "--max-mb",
    )
    cache.add_argument(
        "--max-mb",
        type=float,
        default=512.0,
        metavar="MB",
        help="size budget for --prune (default: 512)",
    )
    cache.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP/JSON API over the "
        "experiment runner)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default: 8477; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent simulation slots (default: 2)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="admitted-job bound; submissions beyond it get 429 "
        "(default: 64)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="RPS",
        help="per-client sustained submissions/second (0 = unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=int,
        default=16,
        help="per-client burst size for --rate-limit (default: 16)",
    )
    serve.add_argument(
        "--prune-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="prune the result cache to --max-cache-mb on this cadence "
        "(0 = never)",
    )
    serve.add_argument(
        "--max-cache-mb",
        type=float,
        default=512.0,
        help="cache size budget for the pruning timer (default: 512)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: .repro_cache)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a persistent cache (no short-circuit, no "
        "drain checkpoint)",
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help="static-analysis pre-flight on every traced workload",
    )
    serve.add_argument(
        "--lint-baseline",
        metavar="FILE",
        default=None,
        help="baseline file for the strict pre-flight; findings "
        "frozen there do not fail admitted jobs",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="emit structured service logs on stderr at this level",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="format service logs as JSON lines (implies --log-level "
        "info unless set)",
    )
    serve.add_argument(
        "--engine",
        choices=("auto", "vectorized", "legacy"),
        default=None,
        help="simulation engine for every admitted job (default: "
        "REPRO_ENGINE or auto); fallbacks surface on the "
        "service_engine_fallbacks_total metric",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="dispatch-only mode: run no local execution slots; every "
        "job waits for a `repro worker` to lease it",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="fleet lease validity window; an unrenewed lease requeues "
        "its job (default: 15)",
    )
    serve.add_argument(
        "--worker-timeout",
        type=float,
        default=45.0,
        metavar="SECONDS",
        help="expire fleet workers silent for longer than this "
        "(default: 45)",
    )
    serve.add_argument(
        "--stream-spans",
        type=int,
        default=0,
        metavar="N",
        help="stream up to N timeline spans per `span` SSE event "
        "(0 = off; routes simulated modes through the reference "
        "interpreter, results stay bit-identical)",
    )

    worker = sub.add_parser(
        "worker",
        help="run a fleet pull-worker against a `repro serve --fleet` "
        "broker",
    )
    worker.add_argument(
        "--url",
        default=None,
        help="broker base URL (default: $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8477)",
    )
    worker.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="stable worker identity (default: generated "
        "hostname-tagged id); reusing an id after a restart keeps its "
        "shard, and the warm cache with it",
    )
    worker.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="jobs requested per lease (server-capped; default: 1)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="sleep between empty leases (default: 0.2)",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: .repro_cache)",
    )
    worker.add_argument(
        "--no-cache",
        action="store_true",
        help="execute without a persistent result cache",
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run lease batches through a supervised worker pool of N "
        "processes (default: in-process sequential execution)",
    )
    worker.add_argument(
        "--engine",
        choices=("auto", "vectorized", "legacy"),
        default=None,
        help="simulation engine (default: REPRO_ENGINE or auto)",
    )
    worker.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="chaos plan, e.g. lease=2,seed=7 (abandon the batch after "
        "2 leased jobs — tests the broker's expiry/redispatch path)",
    )
    worker.add_argument(
        "--max-batches",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N non-empty lease batches (default: "
        "run until SIGTERM)",
    )
    worker.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="emit structured worker logs on stderr at this level",
    )
    worker.add_argument(
        "--log-json",
        action="store_true",
        help="format worker logs as JSON lines (implies --log-level "
        "info unless set)",
    )

    submit = sub.add_parser(
        "submit", help="submit one experiment to a running service"
    )
    submit.add_argument("workload", help="workload code, e.g. BFS")
    submit.add_argument(
        "--url",
        default=None,
        help="service base URL (default: $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8477)",
    )
    submit.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default=None
    )
    submit.add_argument(
        "--modes",
        default="baseline,graphpim",
        metavar="CSV",
        help="mode presets to simulate (default: baseline,graphpim)",
    )
    submit.add_argument("--threads", type=int, default=16)
    submit.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-injection plan, e.g. ber=1e-6,seed=7",
    )
    submit.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default="interactive",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="polling budget with --wait (default: 600)",
    )
    submit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    status = sub.add_parser(
        "status", help="query a job (or the health) of a running service"
    )
    status.add_argument(
        "job_id",
        nargs="?",
        help="job id from `repro submit`; omit for service health",
    )
    status.add_argument(
        "--url",
        default=None,
        help="service base URL (default: $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8477)",
    )
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    watch = sub.add_parser(
        "watch",
        help="stream a job's live events (SSE) from a running service",
    )
    watch.add_argument("job_id", help="job id from `repro submit`")
    watch.add_argument(
        "--url",
        default=None,
        help="service base URL (default: $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8477)",
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="overall watch budget, reconnects included (default: 600)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="print one JSON line per event instead of the human form",
    )

    trace = sub.add_parser("trace", help="trace a workload to a .npz file")
    trace.add_argument("workload")
    trace.add_argument("--vertices", type=int, default=2_000)
    trace.add_argument("--threads", type=int, default=16)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("-o", "--output", required=True)

    sim = sub.add_parser("simulate", help="replay a saved trace")
    sim.add_argument("trace_file")
    sim.add_argument(
        "--mode", choices=sorted(_MODE_CTORS), default="graphpim"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("experiment_id", help="e.g. fig07 or tab03")
    experiment.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default="small"
    )

    faults = sub.add_parser(
        "faults", help="fault-injection tools (sweep, spec inspection)"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    sweep = faults_sub.add_parser(
        "sweep",
        help="speedup vs link bit-error rate (GraphPIM vs baseline)",
    )
    sweep.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default=None
    )
    sweep.add_argument(
        "--bers",
        default=None,
        metavar="CSV",
        help="comma-separated bit-error rates (default 0,1e-7,1e-6,1e-5)",
    )
    sweep.add_argument(
        "--workloads",
        default=None,
        metavar="CSV",
        help="workload codes to sweep (default BFS,DC,PRank)",
    )
    sweep.add_argument("--seed", type=int, default=7)
    show = faults_sub.add_parser(
        "show", help="parse and describe a fault plan spec"
    )
    show.add_argument("spec", help="e.g. ber=1e-6,drop=1e-4,seed=7")
    show.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    obs = sub.add_parser(
        "obs",
        help="observability tools (timeline export, metrics snapshots)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    timeline = obs_sub.add_parser(
        "timeline",
        help="simulate and export a Chrome-trace/Perfetto timeline "
        "in simulated nanoseconds",
    )
    timeline.add_argument(
        "spec",
        help="workload code (e.g. BFS) or a saved .npz trace file",
    )
    timeline.add_argument(
        "--mode", choices=sorted(_MODE_CTORS), default="graphpim"
    )
    timeline.add_argument("--vertices", type=int, default=2_000)
    timeline.add_argument("--threads", type=int, default=16)
    timeline.add_argument("--seed", type=int, default=7)
    timeline.add_argument(
        "--sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every N-th event per (track, name) stream",
    )
    timeline.add_argument(
        "--max-events",
        type=int,
        default=1_000_000,
        help="hard cap on recorded events (excess is counted, not kept)",
    )
    timeline.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-injection plan, e.g. ber=1e-6,drop=1e-4,seed=7",
    )
    timeline.add_argument("-o", "--output", required=True)
    metrics = obs_sub.add_parser(
        "metrics",
        help="simulate and print the run's metrics snapshot",
    )
    metrics.add_argument(
        "spec",
        help="workload code (e.g. BFS) or a saved .npz trace file",
    )
    metrics.add_argument(
        "--mode", choices=sorted(_MODE_CTORS), default="graphpim"
    )
    metrics.add_argument("--vertices", type=int, default=2_000)
    metrics.add_argument("--threads", type=int, default=16)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="print per-series deltas between two metric sources: a "
        "mode preset (simulated), a saved snapshot JSON file, or - "
        "for a snapshot piped on stdin",
    )
    metrics.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-injection plan applied to every simulated mode",
    )
    metrics.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis of a saved trace or a system config",
    )
    lint.add_argument(
        "target",
        nargs="?",
        help="a .npz trace file, or a config preset name "
        "(baseline/upei/graphpim)",
    )
    lint.add_argument(
        "--mode",
        choices=sorted(_MODE_CTORS),
        default="graphpim",
        help="config the trace is checked against (default: graphpim)",
    )
    lint.add_argument(
        "--no-races",
        action="store_true",
        help="skip the barrier-epoch race detector",
    )
    lint.add_argument(
        "--no-fp-ext",
        action="store_true",
        help="lint against the plain HMC 2.0 command set (no FP "
        "add/sub extension)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (same as --format json)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format; sarif emits a SARIF 2.1.0 log for CI "
        "upload (default: text)",
    )
    lint.add_argument(
        "--engine",
        choices=("auto", "vectorized", "legacy"),
        default=None,
        help="analysis engine: auto/vectorized columnar passes (with "
        "per-pass legacy fallback) or the per-event reference "
        "implementations; default: REPRO_ENGINE or auto",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings whose fingerprints are frozen in FILE; "
        "only new findings gate",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="snapshot the current findings' fingerprints to FILE "
        "and exit 0",
    )
    lint.add_argument(
        "--profile",
        action="store_true",
        help="include the vault-contention and per-op offload "
        "profiles (vectorized whole-trace aggregations)",
    )
    lint.add_argument(
        "--screen",
        action="store_true",
        help="screen the trace across the config presets (predicted "
        "offload/exposure counts per config)",
    )
    lint.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include fix hints in the output",
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rule ids and exit",
    )
    return parser


def _cmd_workloads(_args) -> int:
    print(f"{'code':8s} {'category':8s} {'applicable':10s} name")
    for workload in all_workloads():
        applicable = "yes" if workload.applicable else "no"
        if workload.needs_fp_extension:
            applicable = "fp-ext"
        print(
            f"{workload.code:8s} {workload.category.value:8s} "
            f"{applicable:10s} {workload.name}"
        )
    return 0


def _make_graph(args):
    weighted = args.workload == "SSSP"
    return ldbc_like_graph(args.vertices, seed=args.seed, weighted=weighted)


def _parse_faults(args):
    """FaultPlan from ``--faults SPEC``, or None when absent."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.from_spec(args.faults)


def _cmd_run(args) -> int:
    if args.workload is None:
        return _cmd_run_grid(args)
    get_workload(args.workload)  # fail fast on unknown codes
    graph = _make_graph(args)
    plan = _parse_faults(args)
    system = GraphPimSystem(
        config=SystemConfig(faults=plan),
        num_threads=args.threads,
        engine=args.engine,
    )
    report = system.evaluate(
        args.workload, graph, **workload_params(args.workload)
    )
    print(report.summary())
    engines = sorted({i.engine for i in report.engine_infos.values()})
    fallbacks = report.engine_fallbacks
    print(
        f"  engine   : {'+'.join(engines)}"
        + (f" ({fallbacks} mode(s) fell back)" if fallbacks else "")
    )
    if plan is not None:
        stats = report.results["GraphPIM"].hmc_stats
        print(
            f"  faults   : {plan.describe()} — "
            f"{stats.retransmitted_flits} retransmitted FLIT(s), "
            f"{stats.reissued_requests} reissued request(s), "
            f"{stats.fault_stall_cycles:.0f} stall cycle(s)"
        )
    return 0


def _resolve_cache_dir(args) -> str | None:
    from repro.runner import DEFAULT_CACHE_DIR

    if getattr(args, "no_cache", False):
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def _cmd_run_grid(args) -> int:
    """Evaluation grid through the parallel, cached experiment runner."""
    from repro.runner import RunnerConfig, run_evaluation_grid

    log_level = args.log_level
    if log_level is None and args.log_json:
        log_level = "info"
    extra: dict = {}
    if args.pool is not None:
        extra["pool"] = args.pool
    if args.heartbeat_timeout is not None:
        extra["heartbeat_timeout_s"] = args.heartbeat_timeout
    if args.max_pool_restarts is not None:
        extra["max_pool_restarts"] = args.max_pool_restarts
    if args.chaos is not None:
        from repro.chaos import ChaosPlan

        extra["chaos"] = ChaosPlan.from_spec(args.chaos)
    live = args.progress and not args.json
    if live:
        extra["progress_interval_events"] = args.progress_interval
    config = RunnerConfig(
        scale=args.scale,
        strict=args.strict,
        lint_baseline=args.lint_baseline,
        jobs=args.jobs,
        parallel=not args.no_parallel,
        cache_dir=_resolve_cache_dir(args),
        job_timeout_s=args.timeout,
        job_retries=args.retries,
        allow_partial=args.allow_partial,
        resume=args.resume,
        log_level=log_level,
        log_json=args.log_json,
        engine=args.engine,
        **extra,
    )

    def progress(record) -> None:
        if live:
            _clear_live_line()
        print(
            f"  {record.job_id:16s} {record.status:6s} "
            f"sim={record.modes_simulated} hit={record.modes_cached} "
            f"{record.wall_seconds:6.2f}s"
            + (f"  {record.error}" if record.error else ""),
            flush=True,
        )

    def _clear_live_line() -> None:
        sys.stderr.write("\r" + " " * 78 + "\r")
        sys.stderr.flush()

    on_frame = None
    if live:

        def on_frame(index: int, snap) -> None:
            # One carriage-return-overwritten status line on stderr:
            # the most recent snapshot any in-flight job published.
            name = snap.label or snap.phase
            line = (
                f"  job {index}: {name} {snap.fraction * 100.0:5.1f}% "
                f"({snap.events_done}/{snap.events_total} events)"
            )
            if snap.eta_s is not None:
                line += f" eta {snap.eta_s:.0f}s"
            sys.stderr.write("\r" + line[:77].ljust(78))
            sys.stderr.flush()

    reports, runner_report = run_evaluation_grid(
        config,
        progress=None if args.json else progress,
        faults=_parse_faults(args),
        on_frame=on_frame,
    )
    if live:
        _clear_live_line()
    if args.json:
        print(
            json.dumps(
                {
                    "runner": runner_report.to_dict(),
                    "workloads": {
                        code: report.to_dict()
                        for code, report in reports.items()
                    },
                },
                indent=2,
            )
        )
        return 0
    print()
    print(runner_report.summary().splitlines()[0])
    print()
    print(f"{'workload':10s} {'baseline':>14s} {'graphpim':>14s} {'speedup':>8s}")
    for code, report in reports.items():
        graphpim = report.results["GraphPIM"]
        print(
            f"{code:10s} {report.baseline.cycles:14.0f} "
            f"{graphpim.cycles:14.0f} {report.speedup():7.2f}x"
        )
    if runner_report.failures:
        print()
        print(f"{len(runner_report.failures)} job(s) FAILED:")
        for failure in runner_report.failures:
            print(
                f"  {failure.job_id:16s} [{failure.kind}] "
                f"after {failure.attempts} attempt(s): {failure.message}"
            )
        print()
        print(runner_report.summary_line())
        return 1
    print()
    print(runner_report.summary_line())
    return 0


def _cmd_cache(args) -> int:
    from repro.runner import ResultCache

    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_CACHE_DIR", ".repro_cache"
    )
    cache = ResultCache(cache_dir)
    if args.clear:
        removed = cache.clear()
        if args.json:
            print(json.dumps({"cleared": removed, **cache.info()}))
        else:
            print(f"cleared {removed} cached result(s) from {cache_dir}")
        return 0
    if args.prune:
        outcome = cache.prune(int(args.max_mb * 1024 * 1024))
        if args.json:
            print(json.dumps({**outcome, **cache.info()}, indent=2))
        else:
            print(
                f"pruned {outcome['removed']} entr(ies) "
                f"({outcome['freed_bytes'] / 1024:.1f} KiB); "
                f"{outcome['kept']} kept, "
                f"{outcome['size_bytes'] / 1024:.1f} KiB in cache"
            )
        return 0
    if args.verify:
        outcome = cache.verify()
        if args.json:
            print(json.dumps({**outcome, **cache.info()}, indent=2))
        else:
            print(
                f"verified {outcome['checked']} entr(ies): "
                f"{outcome['ok']} ok, "
                f"{outcome['quarantined']} quarantined"
            )
            if outcome["quarantined"]:
                print(f"quarantine : {outcome['quarantine_dir']}")
        # Quarantined entries mean the cache held corrupt data; exit
        # nonzero so CI health checks catch it without parsing output.
        return 1 if outcome["quarantined"] else 0
    info = cache.info()
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(f"cache root : {info['root']}")
        print(f"entries    : {info['entries']}")
        print(f"size       : {info['size_bytes'] / 1024:.1f} KiB")
    return 0


def _service_url(args) -> str:
    return (
        args.url
        or os.environ.get("REPRO_SERVICE_URL")
        or "http://127.0.0.1:8477"
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs.logs import configure_logging
    from repro.runner import RunnerConfig
    from repro.service import DEFAULT_PORT, ServiceConfig, serve_async

    log_level = args.log_level
    if log_level is None and args.log_json:
        log_level = "info"
    if log_level is not None:
        configure_logging(log_level, json_lines=args.log_json)
    config = ServiceConfig(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        rate_limit_rps=args.rate_limit,
        rate_limit_burst=args.rate_burst,
        prune_interval_s=args.prune_interval,
        max_cache_mb=args.max_cache_mb,
        stream_spans=args.stream_spans,
        fleet=args.fleet,
        fleet_lease_ttl_s=args.lease_ttl,
        fleet_worker_timeout_s=args.worker_timeout,
        runner=RunnerConfig(
            strict=args.strict,
            lint_baseline=args.lint_baseline,
            cache_dir=_resolve_cache_dir(args),
            engine=args.engine,
        ),
    )

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        return asyncio.run(serve_async(config, announce=announce))
    except KeyboardInterrupt:
        # Ctrl-C before the loop's signal handler was installed.
        return 0


def _cmd_worker(args) -> int:
    import signal as _signal

    from repro.fleet.worker import FleetWorker, make_worker_id
    from repro.obs.logs import configure_logging
    from repro.runner import RunnerConfig
    from repro.service.client import ServiceClient

    log_level = args.log_level
    if log_level is None and args.log_json:
        log_level = "info"
    if log_level is not None:
        configure_logging(log_level, json_lines=args.log_json)
    chaos = None
    if args.chaos:
        from repro.chaos import ChaosPlan

        chaos = ChaosPlan.from_spec(args.chaos)
    runner = RunnerConfig(
        parallel=args.jobs is not None and args.jobs > 1,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args),
        engine=args.engine,
        chaos=chaos,
    )
    worker = FleetWorker(
        ServiceClient(_service_url(args)),
        runner,
        worker_id=args.worker_id or make_worker_id(),
        capacity=args.capacity,
        poll_interval_s=args.poll_interval,
    )
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            _signal.signal(sig, lambda *_: worker.stop())
        except (ValueError, OSError):
            pass  # non-main thread: rely on --max-batches
    print(
        f"repro worker {worker.worker_id} pulling from "
        f"{_service_url(args)}",
        flush=True,
    )
    summary = worker.run(max_batches=args.max_batches)
    print(
        f"repro worker {worker.worker_id} stopped: "
        f"{summary['executed']} executed, {summary['failed']} failed"
        + (" (batch abandoned by chaos)" if summary["abandoned"] else ""),
        flush=True,
    )
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(_service_url(args))
    modes = [part.strip() for part in args.modes.split(",") if part.strip()]
    ticket = client.submit(
        workload=args.workload,
        scale=args.scale,
        modes=modes,
        threads=args.threads,
        faults=args.faults,
        priority=args.priority,
    )
    if args.no_wait:
        if args.json:
            print(
                json.dumps(
                    {
                        "job_id": ticket.job_id,
                        "status": ticket.status,
                        "outcome": ticket.outcome,
                    }
                )
            )
        else:
            print(f"job    : {ticket.job_id}")
            print(f"status : {ticket.status} ({ticket.outcome})")
            print(f"poll   : repro status {ticket.job_id}")
        return 0
    status = client.wait(ticket.job_id, timeout_s=args.timeout)
    if args.json:
        sys.stdout.buffer.write(status.raw)
        if not status.raw.endswith(b"\n"):
            sys.stdout.buffer.write(b"\n")
        return 0
    print(f"job      : {ticket.job_id} ({ticket.outcome})")
    for label, payload in sorted(status.results.items()):
        print(f"{label:10s} {payload['cycles']:14.0f} cycles")
    baseline = status.results.get("Baseline")
    graphpim = status.results.get("GraphPIM")
    if baseline and graphpim and graphpim["cycles"]:
        print(
            f"speedup  : "
            f"{baseline['cycles'] / graphpim['cycles']:.2f}x"
        )
    return 0


def _cmd_status(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(_service_url(args))
    if args.job_id is None:
        health = client.health()
        if args.json:
            print(json.dumps(health, indent=2))
            return 0
        print(f"status   : {health.get('status')}")
        print(f"draining : {health.get('draining')}")
        print(f"queued   : {health.get('queued')}")
        print(f"inflight : {health.get('inflight')}")
        return 0
    status = client.status(args.job_id)
    if args.json:
        sys.stdout.buffer.write(status.raw)
        if not status.raw.endswith(b"\n"):
            sys.stdout.buffer.write(b"\n")
        return 0
    print(f"job    : {status.job_id}")
    print(f"status : {status.status}")
    if status.error:
        print(f"error  : {status.error}")
    for label, payload in sorted(status.results.items()):
        print(f"{label:10s} {payload['cycles']:14.0f} cycles")
    return 0


def _cmd_watch(args) -> int:
    import time as _time

    from repro.common.errors import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient(_service_url(args))
    deadline = _time.monotonic() + args.timeout
    last_id: int | None = None
    while True:
        try:
            for event in client.events(
                args.job_id, last_event_id=last_id
            ):
                last_id = event.event_id
                if args.json:
                    print(
                        json.dumps(
                            {
                                "id": event.event_id,
                                "event": event.event,
                                "data": event.data,
                            }
                        ),
                        flush=True,
                    )
                elif event.event == "progress":
                    data = event.data
                    done = data.get("events_done", 0)
                    total = data.get("events_total", 0)
                    pct = 100.0 * done / total if total else 0.0
                    line = (
                        f"progress     {pct:5.1f}%  "
                        f"{done}/{total} events"
                    )
                    name = data.get("label") or data.get("phase", "")
                    if name:
                        line += f"  {name}"
                    eta = data.get("eta_s")
                    if eta is not None:
                        line += f"  eta {eta:.0f}s"
                    print(line, flush=True)
                elif event.event == "span":
                    spans = event.data.get("spans") or []
                    names = [
                        span.get("name", "?") for span in spans[:4]
                    ]
                    more = len(spans) - len(names)
                    line = (
                        f"span         {len(spans)} span(s): "
                        + ", ".join(names)
                    )
                    if more > 0:
                        line += f", +{more} more"
                    print(line, flush=True)
                else:
                    detail = event.data.get("status", "")
                    if event.event == "failed":
                        detail = event.data.get("error", "") or detail
                    print(f"{event.event:12s} {detail}", flush=True)
                if event.terminal:
                    return 1 if event.event == "failed" else 0
        except ServiceError as error:
            # Unknown job ids are final; a torn stream is retried with
            # Last-Event-ID resume below.
            if "unknown job" in str(error):
                raise
        if _time.monotonic() >= deadline:
            print(
                f"repro watch: no terminal event after "
                f"{args.timeout:g}s",
                file=sys.stderr,
            )
            return 2
        _time.sleep(0.5)


def _cmd_trace(args) -> int:
    workload = get_workload(args.workload)
    graph = _make_graph(args)
    run = workload.run(
        graph, num_threads=args.threads, **workload_params(args.workload)
    )
    save_trace(run.trace, args.output)
    print(
        f"wrote {run.trace.num_events} events "
        f"({run.trace.num_threads} threads) to {args.output}"
    )
    return 0


def _cmd_simulate(args) -> int:
    trace = load_trace(args.trace_file)
    config = _MODE_CTORS[args.mode]()
    result = simulate(trace, config)
    print(f"mode        : {config.display_name}")
    print(f"cycles      : {result.cycles:.0f}")
    print(f"instructions: {result.instructions}")
    print(f"ipc/core    : {result.ipc / trace.num_threads:.4f}")
    print(f"offloaded   : {result.core_stats.offloaded_atomics}")
    print(f"host atomics: {result.core_stats.host_atomics}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import run_experiment

    static = {"tab02", "tab03", "tab05", "tab06"}
    if args.experiment_id in static:
        result = run_experiment(args.experiment_id)
    else:
        result = run_experiment(args.experiment_id, scale=args.scale)
    print(result.render())
    return 0


def _cmd_faults(args) -> int:
    if args.faults_command == "show":
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec(args.spec)
        if args.json:
            print(json.dumps(plan.to_dict(), indent=2))
        else:
            print(plan.describe())
        return 0
    # sweep
    from repro.harness import run_experiment

    kwargs: dict = {"scale": args.scale, "seed": args.seed}
    if args.bers is not None:
        kwargs["bers"] = tuple(
            float(part) for part in args.bers.split(",") if part.strip()
        )
    if args.workloads is not None:
        kwargs["workloads"] = tuple(
            part.strip() for part in args.workloads.split(",") if part.strip()
        )
    result = run_experiment("faultsweep", **kwargs)
    print(result.render())
    return 0


def _trace_for_spec(args):
    """Trace from ``args.spec``: a workload code or a saved .npz file."""
    spec = args.spec
    if spec.endswith(".npz") or os.path.exists(spec):
        return load_trace(spec)
    workload = get_workload(spec)
    weighted = spec == "SSSP"
    graph = ldbc_like_graph(
        args.vertices, seed=args.seed, weighted=weighted
    )
    run = workload.run(
        graph, num_threads=args.threads, **workload_params(spec)
    )
    return run.trace


def _obs_config(args, mode: str):
    """SystemConfig for one obs simulation (mode + optional faults)."""
    return _MODE_CTORS[mode](faults=_parse_faults(args))


def _cmd_obs(args) -> int:
    if args.obs_command == "timeline":
        return _cmd_obs_timeline(args)
    return _cmd_obs_metrics(args)


def _cmd_obs_timeline(args) -> int:
    from repro.obs import TimelineRecorder

    trace = _trace_for_spec(args)
    config = _obs_config(args, args.mode)
    recorder = TimelineRecorder(
        sample_every=args.sample, max_events=args.max_events
    )
    result = simulate(trace, config, recorder=recorder)
    recorder.write(args.output)
    print(f"mode    : {config.display_name}")
    print(f"cycles  : {result.cycles:.0f}")
    print(
        f"events  : {recorder.event_count} recorded, "
        f"{recorder.dropped_events} dropped"
    )
    print(f"trace   : {args.output}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _metrics_operand(args, operand: str, trace):
    """Resolve one ``--diff`` operand to ``(snapshot, name, trace)``.

    A mode preset simulates the spec's trace under that mode; anything
    else is read as a serialized snapshot — a JSON file path, or ``-``
    for stdin — and schema-validated before use.
    """
    from repro.common.errors import ConfigError
    from repro.obs import MetricsRegistry

    if operand in _MODE_CTORS:
        if trace is None:
            trace = _trace_for_spec(args)
        snapshot = simulate(
            trace, _obs_config(args, operand)
        ).metrics_snapshot()
        return snapshot, operand, trace
    source = "stdin" if operand == "-" else operand
    try:
        raw = (
            sys.stdin.read()
            if operand == "-"
            else open(operand, encoding="utf-8").read()
        )
        snapshot = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ConfigError(
            f"{source} is not valid JSON: {error}"
        ) from error
    if not isinstance(snapshot, dict):
        raise ConfigError(f"{source}: snapshot must be a JSON object")
    MetricsRegistry.from_snapshot(snapshot)  # schema gate
    name = "stdin" if operand == "-" else os.path.basename(operand)
    return snapshot, name, trace


def _cmd_obs_metrics(args) -> int:
    from repro.obs import diff_snapshots, flatten_snapshot

    if args.diff is not None:
        # Operands may be mode presets, snapshot files, or "-"; the
        # trace is only built when a mode actually needs simulating.
        trace = None
        snap_a, mode_a, trace = _metrics_operand(
            args, args.diff[0], trace
        )
        snap_b, mode_b, trace = _metrics_operand(
            args, args.diff[1], trace
        )
        rows = diff_snapshots(snap_a, snap_b)
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "series": series,
                            mode_a: value_a,
                            mode_b: value_b,
                            "delta": delta,
                        }
                        for series, value_a, value_b, delta in rows
                    ],
                    indent=2,
                )
            )
            return 0
        width = max((len(row[0]) for row in rows), default=6)
        print(
            f"{'series':{width}s} {mode_a:>16s} {mode_b:>16s} "
            f"{'delta':>16s}"
        )
        for series, value_a, value_b, delta in rows:
            print(
                f"{series:{width}s} {value_a:16.6g} {value_b:16.6g} "
                f"{delta:+16.6g}"
            )
        return 0
    result = simulate(_trace_for_spec(args), _obs_config(args, args.mode))
    snapshot = result.metrics_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    flat = flatten_snapshot(snapshot)
    width = max((len(series) for series in flat), default=6)
    for series in sorted(flat):
        print(f"{series:{width}s} {flat[series]:16.6g}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        apply_baseline,
        describe_rules,
        lint_config,
        load_baseline,
        render_json,
        render_report,
        render_sarif,
        write_baseline,
    )

    if args.rules:
        print(describe_rules())
        return 0
    if args.target is None:
        print("lint: a trace file or config preset name is required",
              file=sys.stderr)
        return 2

    data_sections: dict = {}
    if args.target in _MODE_CTORS:
        report = lint_config(_MODE_CTORS[args.target]())
    else:
        from repro.analysis.passes import PassManager

        # Raw load: the linter reports malformed traces as findings
        # instead of dying on the loader's own fail-fast checks.
        trace = load_trace(args.target, validate=False)
        config = _MODE_CTORS[args.mode]()
        if args.no_fp_ext:
            import dataclasses

            config = dataclasses.replace(config, fp_extension=False)
        passes = ["lint"] + ([] if args.no_races else ["race"])
        if args.profile:
            passes += ["profile", "offload"]
        screen: list = []
        if args.screen:
            passes.append("screening")
            screen = [ctor() for _, ctor in sorted(_MODE_CTORS.items())]
        manager = PassManager(passes)
        results = manager.run(
            trace,
            config=config,
            engine=args.engine,
            screen_configs=screen,
        )
        report = manager.merged_report(
            results, getattr(trace, "name", None) or "trace"
        )
        for name in ("profile", "offload", "screening"):
            if name in results and results[name].data:
                data_sections[name] = results[name].data

    if args.write_baseline:
        count = write_baseline(report, args.write_baseline)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    if args.baseline:
        report = apply_baseline(report, load_baseline(args.baseline))

    fmt = "json" if args.json else args.format
    if fmt == "sarif":
        print(render_sarif(report))
    elif fmt == "json":
        payload = json.loads(render_json(report))
        payload.update(data_sections)
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, verbose=args.verbose))
        for name, data in data_sections.items():
            print(f"\n[{name}]")
            print(json.dumps(data, indent=2))
    return report.exit_code()


_COMMANDS = {
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "watch": _cmd_watch,
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "faults": _cmd_faults,
    "obs": _cmd_obs,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid invocations — unknown workloads, malformed trace files,
    inconsistent configurations — exit 2 with the error on stderr
    instead of a traceback, so scripts and CI can gate on the code.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; redirect
        # stdout at the descriptor level so the interpreter's shutdown
        # flush does not raise again, and exit like a SIGPIPE'd process.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
