"""Evaluation presets: bench graphs, per-workload parameters, scales.

The paper evaluates on LDBC-1M against Table IV's cache hierarchy; this
reproduction scales both down together so the footprint:capacity ratios
(the quantities that determine miss behavior) are preserved.  A
``scale`` knob selects how much work the experiments do:

- ``"tiny"``    — unit-test speed (hundreds of vertices).
- ``"small"``   — seconds per simulation; default for benches.
- ``"paper"``   — the calibration scale used in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

from repro.common.errors import ConfigError
from repro.graph.csr import CsrGraph
from repro.graph.generators import ldbc_like_graph
from repro.sim.config import SystemConfig

#: Default vertex counts per scale.
SCALE_VERTICES = {"tiny": 400, "small": 2_000, "paper": 4_000}

#: Per-workload execution parameters at bench scale.  TC's intersection
#: cost is quadratic in degree, so it runs degree-capped and sampled
#: (documented in DESIGN.md); BC uses a source sample as GraphBIG does.
WORKLOAD_PARAMS: dict[str, dict] = {
    "BC": {"num_sources": 2},
    "TC": {"max_degree": 48, "sample_fraction": 0.2},
    "GInfer": {"sweeps": 1},
    "GUp": {"churn_fraction": 0.1},
    "TMorph": {"merge_fraction": 0.03},
}


def resolve_scale(scale: str | None = None) -> str:
    """Resolve the experiment scale (env ``REPRO_SCALE`` overrides)."""
    value = scale or os.environ.get("REPRO_SCALE", "small")
    if value not in SCALE_VERTICES:
        raise ConfigError(
            f"unknown scale {value!r}; choose from {sorted(SCALE_VERTICES)}"
        )
    return value


def bench_graph(
    scale: str | None = None, seed: int = 7, weighted: bool = False
) -> CsrGraph:
    """The default LDBC-like evaluation graph at the given scale."""
    vertices = SCALE_VERTICES[resolve_scale(scale)]
    return ldbc_like_graph(vertices, seed=seed, weighted=weighted)


def workload_graph(
    code: str, scale: str | None = None, seed: int = 7
) -> CsrGraph:
    """The input graph for one workload (SSSP gets edge weights)."""
    return bench_graph(scale, seed=seed, weighted=(code == "SSSP"))


def workload_params(code: str) -> dict:
    """Bench-scale execution parameters for a workload."""
    return dict(WORKLOAD_PARAMS.get(code, {}))


def sim_scale_config(**overrides) -> SystemConfig:
    """The default simulated system (Table IV, capacity-scaled)."""
    return SystemConfig(**overrides)
