"""High-level GraphPIM evaluation facade.

:class:`GraphPimSystem` wraps the full pipeline — functional workload
execution, trace capture, and timing simulation under the three system
modes — behind a single call, returning an :class:`EvaluationReport`
with the paper's headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.engine import EngineInfo, EngineSelection
from repro.common.errors import SimulationError
from repro.graph.csr import CsrGraph
from repro.sim.config import SystemConfig
from repro.sim.system import (
    RESULT_SCHEMA_VERSION,
    SimResult,
    simulate_with_engine,
)
from repro.workloads.base import WorkloadRun
from repro.workloads.registry import get_workload


@dataclass
class EvaluationReport:
    """Results of evaluating one workload across system modes.

    ``run`` is ``None`` for reports rehydrated from serialized payloads
    (:meth:`from_dict`): traces are not part of the stable schema, only
    their summary statistics are.
    """

    workload_code: str
    run: Optional[WorkloadRun] = None
    results: dict[str, SimResult] = field(default_factory=dict)
    #: Which engine produced each mode's result (observability only —
    #: results are bit-identical across engines, so this never enters
    #: the serialized payload and is empty on rehydrated reports).
    engine_infos: dict[str, EngineInfo] = field(default_factory=dict)

    @property
    def engine_fallbacks(self) -> int:
        """Modes whose vectorized kernel declined and fell back."""
        return sum(
            1 for info in self.engine_infos.values() if info.fallback
        )

    @property
    def baseline(self) -> SimResult:
        return self.results["Baseline"]

    def speedup(self, mode_label: str = "GraphPIM") -> float:
        """Speedup of ``mode_label`` over the baseline."""
        return self.results[mode_label].speedup_over(self.baseline)

    def bandwidth_flits(self, mode_label: str) -> tuple[int, int]:
        """(request, response) FLIT totals for a mode."""
        stats = self.results[mode_label].hmc_stats
        return stats.total_request_flits, stats.total_response_flits

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        if self.run is not None:
            header = (
                f"workload {self.workload_code}: "
                f"{self.run.trace.num_events} trace events, "
                f"{self.run.stats.atomics} atomics "
                f"({self.run.stats.property_atomics} PIM candidates)"
            )
        else:
            header = f"workload {self.workload_code}"
        lines = [header]
        base = self.baseline
        lines.append(
            f"  Baseline : {base.cycles:12.0f} cycles  ipc/core="
            f"{base.ipc / base.config.num_cores:.3f}"
        )
        for label, result in self.results.items():
            if label == "Baseline":
                continue
            lines.append(
                f"  {label:9s}: {result.cycles:12.0f} cycles  "
                f"speedup={result.speedup_over(base):.2f}x"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (`repro run --json`, runner worker IPC)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Stable JSON-safe payload; round-trips via :meth:`from_dict`.

        The full trace is not serialized (that is :mod:`repro.trace.io`'s
        job); only its summary statistics travel with the report.
        """
        if self.run is not None:
            trace_summary = {
                "num_events": self.run.trace.num_events,
                "num_threads": self.run.trace.num_threads,
                "atomics": self.run.stats.atomics,
                "property_atomics": self.run.stats.property_atomics,
            }
        else:
            trace_summary = None
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload_code": self.workload_code,
            "trace": trace_summary,
            "results": {
                label: result.to_dict()
                for label, result in self.results.items()
            },
        }

    @classmethod
    def from_dict(
        cls, data: dict, run: Optional[WorkloadRun] = None
    ) -> "EvaluationReport":
        """Rebuild a report; pass ``run`` to re-attach a live trace."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported EvaluationReport schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            workload_code=data["workload_code"],
            run=run,
            results={
                label: SimResult.from_dict(payload)
                for label, payload in data["results"].items()
            },
        )


class GraphPimSystem:
    """One-stop evaluation of workloads on the modeled machine.

    Parameters
    ----------
    config:
        Shared system parameters (cache geometry, HMC, core model); the
        three evaluation modes are derived from it.
    num_threads:
        Virtual threads the workload is partitioned over (= active
        cores in the simulation).
    strict:
        Run the static-analysis pre-flight (:mod:`repro.analysis`)
        before every simulation: the config is validated and each trace
        is linted + race-checked; ERROR findings raise
        :class:`~repro.common.errors.AnalysisError` instead of
        producing skewed results.
    lint_baseline:
        Optional path to a finding-baseline file
        (:mod:`repro.analysis.baseline`).  When set, the strict
        pre-flight subtracts the frozen fingerprints before gating, so
        only new findings raise.
    engine:
        Simulation engine selection (``auto`` / ``vectorized`` /
        ``legacy``, or an
        :class:`~repro.common.engine.EngineSelection`); None resolves
        the ambient default (``REPRO_ENGINE`` env, then auto).  Results
        are bit-identical across engines; the per-mode engine that
        actually ran is reported on
        :attr:`EvaluationReport.engine_infos`.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_threads: int = 16,
        strict: bool = False,
        lint_baseline: str | None = None,
        engine: "EngineSelection | str | None" = None,
    ):
        self.config = config or SystemConfig()
        self.num_threads = num_threads
        self.strict = strict
        self.lint_baseline = lint_baseline
        self.engine = EngineSelection.coerce(engine)

    def trace(self, workload_code: str, graph: CsrGraph, **params) -> WorkloadRun:
        """Phase 1: run the workload functionally and capture its trace."""
        workload = get_workload(workload_code)
        return workload.run(graph, num_threads=self.num_threads, **params)

    def evaluate(
        self,
        workload_code: str,
        graph: CsrGraph,
        modes: list[SystemConfig] | None = None,
        strict: bool | None = None,
        **params,
    ) -> EvaluationReport:
        """Phases 1+2: trace once, simulate under every mode.

        ``strict`` overrides the instance-level setting; when active,
        the lint/race pre-flight runs on the captured trace before any
        timing simulation and raises on ERROR findings.
        """
        run = self.trace(workload_code, graph, **params)
        return self.evaluate_trace(run, modes, strict=strict)

    def evaluate_trace(
        self,
        run: WorkloadRun,
        modes: list[SystemConfig] | None = None,
        strict: bool | None = None,
    ) -> EvaluationReport:
        """Phase 2 only: simulate an existing trace under every mode."""
        configs = modes or self.config.evaluation_trio()
        if self._resolve_strict(strict):
            self._preflight(run, configs)
        report = EvaluationReport(
            workload_code=run.workload.code, run=run
        )
        for config in configs:
            result, info = simulate_with_engine(
                run.trace, config, engine=self.engine
            )
            report.results[config.display_name] = result
            report.engine_infos[config.display_name] = info
        return report

    def _resolve_strict(self, strict: bool | None) -> bool:
        """Per-call ``strict`` override falls back to the instance flag."""
        if strict is None:
            return self.strict
        return strict

    def _preflight(
        self, run: WorkloadRun, configs: list[SystemConfig]
    ) -> None:
        """Strict-mode static analysis; raises AnalysisError on ERRORs.

        The trace lint + race pass is content-deduplicated
        (:func:`repro.analysis.preflight_run`): a trace the suite or a
        previous evaluation already checked against the same lint config
        is not walked again.
        """
        from repro.analysis import check_strict, lint_config, preflight_run
        from repro.sim.config import Mode

        for config in configs:
            check_strict(lint_config(config))
        # Lint the trace against the mode that actually offloads, so the
        # PMR command-set and UC rules see the operative flags.
        lint_cfg = next(
            (c for c in configs if c.mode is Mode.GRAPHPIM), self.config
        )
        preflight_run(run, config=lint_cfg, baseline=self.lint_baseline)
