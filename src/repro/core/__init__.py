"""Top-level GraphPIM API: system facade and evaluation presets."""

from repro.core.api import EvaluationReport, GraphPimSystem
from repro.core.presets import (
    WORKLOAD_PARAMS,
    bench_graph,
    sim_scale_config,
    workload_graph,
)

__all__ = [
    "EvaluationReport",
    "GraphPimSystem",
    "WORKLOAD_PARAMS",
    "bench_graph",
    "sim_scale_config",
    "workload_graph",
]
