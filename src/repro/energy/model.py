"""Uncore energy accounting from simulation statistics.

Reproduces Figure 15's five components: host caches, HMC SerDes links,
HMC functional units, HMC logic layer, and HMC DRAM.  Each component is
static power x execution time plus per-event dynamic energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import EnergyParams
from repro.sim.system import SimResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Uncore energy by component, in joules."""

    caches: float
    hmc_link: float
    hmc_fu: float
    hmc_logic: float
    hmc_dram: float

    @property
    def total(self) -> float:
        return (
            self.caches
            + self.hmc_link
            + self.hmc_fu
            + self.hmc_logic
            + self.hmc_dram
        )

    def as_dict(self) -> dict[str, float]:
        """Figure 15 component labels -> joules."""
        return {
            "Caches": self.caches,
            "HMC Link": self.hmc_link,
            "HMC FU": self.hmc_fu,
            "HMC LL": self.hmc_logic,
            "HMC DRAM": self.hmc_dram,
        }

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Components as fractions of another run's total (Figure 15)."""
        denom = baseline.total
        return {name: value / denom for name, value in self.as_dict().items()}


def uncore_energy(
    result: SimResult, params: EnergyParams | None = None
) -> EnergyBreakdown:
    """Compute the uncore energy breakdown of one simulation."""
    p = params or EnergyParams()
    seconds = p.seconds(result.cycles)
    cache = result.cache_stats
    hmc = result.hmc_stats
    hmc_config = result.config.hmc

    caches = (
        cache["L1"].accesses * p.l1_access_nj
        + cache["L2"].accesses * p.l2_access_nj
        + cache["L3"].accesses * p.l3_access_nj
    ) * 1e-9 + p.cache_static_w * seconds

    link = (
        hmc.total_flits * p.link_flit_nj * 1e-9
        + p.link_static_w * seconds
    )

    total_packets = sum(hmc.requests.values())
    logic = (
        total_packets * p.logic_packet_nj * 1e-9
        + p.logic_static_w * seconds
    )

    dram = (
        hmc.dram_activates * p.dram_activate_nj
        + (hmc.dram_reads + hmc.dram_writes) * p.dram_access_nj
    ) * 1e-9 + p.dram_static_w * seconds

    fu_static_w = (
        hmc_config.num_vaults
        * (
            hmc_config.fus_per_vault * p.fu_int_static_mw_per_unit
            + hmc_config.fp_fus_per_vault * p.fu_fp_static_mw_per_unit
        )
        * 1e-3
    )
    fu = (
        hmc.fu_int_ops * p.fu_int_op_nj + hmc.fu_fp_ops * p.fu_fp_op_nj
    ) * 1e-9 + fu_static_w * seconds

    return EnergyBreakdown(
        caches=caches,
        hmc_link=link,
        hmc_fu=fu,
        hmc_logic=logic,
        hmc_dram=dram,
    )
