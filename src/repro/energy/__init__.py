"""Uncore energy model (Section IV-B4, Figure 15)."""

from repro.energy.model import EnergyBreakdown, uncore_energy
from repro.energy.params import EnergyParams

__all__ = ["EnergyBreakdown", "EnergyParams", "uncore_energy"]
