"""Energy coefficients.

The paper models cache energy with CACTI 6.5 and HMC energy with the
models of Jeddeloh & Keeth (VLSIT'12) and Pugsley et al. (ISPASS'14);
neither tool is available here, so we encode the *published aggregate
characteristics* those models produce:

- HMC SerDes links draw ~43% of HMC power and are dominated by
  always-on static power (Section IV-B4).
- The logic layer (vault controllers, crossbar) is the second-largest
  static consumer.
- DRAM energy is mostly dynamic (activate + read/write per access).
- Fixed-function integer FUs are negligible; FP units are visibly more
  expensive per op (the paper recommends one FP FU per vault).

Coefficients are in nanojoules and watts at the modeled 2 GHz host
clock; absolute values are representative, the *breakdown shape* is
what EXPERIMENTS.md validates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Tunable energy coefficients."""

    # --- dynamic energy per event (nJ) ---
    l1_access_nj: float = 0.02
    l2_access_nj: float = 0.08
    l3_access_nj: float = 0.4
    #: Per-FLIT transfer energy across the SerDes links (both PHYs).
    link_flit_nj: float = 0.8
    #: DRAM row activate + precharge.
    dram_activate_nj: float = 2.0
    #: DRAM column read or write burst.
    dram_access_nj: float = 1.0
    #: Logic-layer packet handling (vault controller + crossbar hop).
    logic_packet_nj: float = 0.3
    fu_int_op_nj: float = 0.05
    fu_fp_op_nj: float = 2.5

    # --- static power (W), charged for the whole execution ---
    #: SerDes links: always-on; the reason links are ~43% of HMC power.
    link_static_w: float = 4.2
    logic_static_w: float = 2.8
    dram_static_w: float = 1.6
    cache_static_w: float = 0.8
    #: Per-FU leakage is negligible for integer FUs; FP FUs leak more,
    #: which is why Section IV-B4 recommends only one per vault.
    fu_int_static_mw_per_unit: float = 0.05
    fu_fp_static_mw_per_unit: float = 12.0

    core_ghz: float = 2.0

    def seconds(self, cycles: float) -> float:
        """Execution time in seconds at the modeled clock."""
        return cycles / (self.core_ghz * 1e9)
