"""Three-level inclusive cache hierarchy with a MESI-lite directory.

Per-core private L1/L2, shared L3 (Table IV).  Inclusion is enforced:
an L3 eviction back-invalidates every private copy.  The directory at
L3 tracks which cores hold each line, so atomic RMWs can charge the
coherence cost of invalidating remote copies — the
"cache invalidation and coherence traffic" half of the paper's atomic
overhead (Section II-D).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE_BYTES, KB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    latency: float
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache size and ways must be positive")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.ways} ways x {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    def to_dict(self) -> dict:
        return {
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "latency": self.latency,
            "line_bytes": self.line_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        return cls(**data)


@dataclass
class CacheLevelStats:
    """Hit/miss counters for one level (aggregated over cores)."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, kilo_instructions: float) -> float:
        """Misses per kilo-instruction (Figure 2)."""
        return self.misses / kilo_instructions if kilo_instructions else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    @classmethod
    def from_dict(cls, data: dict) -> "CacheLevelStats":
        return cls(hits=data["hits"], misses=data["misses"])

    def publish(self, registry, level: str) -> None:
        """Register this level's counters under a ``level`` label."""
        registry.counter(
            "cache_hits_total", help="cache hits by level"
        ).inc(self.hits, level=level)
        registry.counter(
            "cache_misses_total", help="cache misses by level"
        ).inc(self.misses, level=level)


class _SetAssocCache:
    """A single set-associative LRU cache holding line addresses."""

    __slots__ = ("num_sets", "ways", "sets")

    def __init__(self, config: CacheConfig):
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.sets: list[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def lookup(self, line: int) -> bool:
        """Probe and update LRU on hit."""
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return True
        return False

    def insert(self, line: int) -> int | None:
        """Insert a line; returns the evicted line, if any."""
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.ways:
            victim, _ = s.popitem(last=False)
        s[line] = True
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line; returns whether it was present."""
        s = self.sets[line % self.num_sets]
        return s.pop(line, None) is not None

    def __contains__(self, line: int) -> bool:
        return line in self.sets[line % self.num_sets]


class CacheHierarchy:
    """Private L1/L2 per core, shared inclusive L3 with a directory."""

    #: Extra cycles charged when an RMW must invalidate remote copies.
    COHERENCE_PENALTY = 24.0

    def __init__(
        self,
        num_cores: int,
        l1: CacheConfig,
        l2: CacheConfig,
        l3: CacheConfig,
        prefetch_next_line: bool = False,
    ):
        if num_cores < 1:
            raise ConfigError("need at least one core")
        self.num_cores = num_cores
        #: Idealized next-line prefetcher at the LLC: on an L3 miss the
        #: successor line is installed for free.  Helps streaming
        #: structure access; cannot help irregular property access
        #: (the Section II-C claim the ablation bench checks).
        self.prefetch_next_line = prefetch_next_line
        self.prefetches_issued = 0
        self.l1_config, self.l2_config, self.l3_config = l1, l2, l3
        self._l1 = [_SetAssocCache(l1) for _ in range(num_cores)]
        self._l2 = [_SetAssocCache(l2) for _ in range(num_cores)]
        self._l3 = _SetAssocCache(l3)
        #: line -> set of core ids with a private copy.
        self._directory: dict[int, set[int]] = {}
        #: lines dirty at the L3 level (written back to memory on evict).
        self._dirty: set[int] = set()
        self.l1_stats = CacheLevelStats()
        self.l2_stats = CacheLevelStats()
        self.l3_stats = CacheLevelStats()
        self.invalidations = 0
        self.writebacks = 0

    def line_of(self, addr: int) -> int:
        """Line address (64-byte aligned)."""
        return addr >> 6

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(
        self, core: int, addr: int, is_write: bool
    ) -> tuple[int, float, bool, list[int]]:
        """Access the hierarchy for one core.

        Returns ``(hit_level, lookup_latency, coherence_hit, writebacks)``
        where ``hit_level`` is 1/2/3 or 0 for a memory access,
        ``lookup_latency`` covers the cache-checking walk (fill latency
        from memory is the caller's job via the HMC device),
        ``coherence_hit`` flags that remote copies were invalidated, and
        ``writebacks`` lists dirty victim lines that must go to memory.
        """
        line = self.line_of(addr)
        l1, l2 = self._l1[core], self._l2[core]
        writebacks: list[int] = []
        coherence_hit = False

        if l1.lookup(line):
            self.l1_stats.hits += 1
            hit_level, latency = 1, self.l1_config.latency
        else:
            self.l1_stats.misses += 1
            if l2.lookup(line):
                self.l2_stats.hits += 1
                hit_level = 2
                latency = self.l1_config.latency + self.l2_config.latency
                self._fill_l1(core, line, writebacks)
            else:
                self.l2_stats.misses += 1
                latency = (
                    self.l1_config.latency
                    + self.l2_config.latency
                    + self.l3_config.latency
                )
                if self._l3.lookup(line):
                    self.l3_stats.hits += 1
                    hit_level = 3
                else:
                    self.l3_stats.misses += 1
                    hit_level = 0
                    self._fill_l3(line, writebacks)
                    if self.prefetch_next_line and line + 1 not in self._l3:
                        self._fill_l3(line + 1, writebacks)
                        self.prefetches_issued += 1
                self._fill_l2(core, line, writebacks)
                self._fill_l1(core, line, writebacks)
                self._directory.setdefault(line, set()).add(core)

        if is_write:
            coherence_hit = self._invalidate_remote(core, line)
            self._dirty.add(line)
        if hit_level in (1, 2):
            self._directory.setdefault(line, set()).add(core)
        return hit_level, latency, coherence_hit, writebacks

    def probe(self, core: int, addr: int) -> int:
        """Non-mutating locality check (U-PEI's monitor): 1/2/3/0."""
        line = self.line_of(addr)
        if line in self._l1[core]:
            return 1
        if line in self._l2[core]:
            return 2
        if line in self._l3:
            return 3
        return 0

    # ------------------------------------------------------------------
    # Fill / eviction plumbing
    # ------------------------------------------------------------------

    def _fill_l1(self, core: int, line: int, writebacks: list[int]) -> None:
        victim = self._l1[core].insert(line)
        if victim is not None:
            self._drop_private(core, victim)

    def _fill_l2(self, core: int, line: int, writebacks: list[int]) -> None:
        victim = self._l2[core].insert(line)
        if victim is not None:
            # Inclusion between L1 and L2: kick the line out of L1 too.
            self._l1[core].invalidate(victim)
            self._drop_private(core, victim)

    def _fill_l3(self, line: int, writebacks: list[int]) -> None:
        victim = self._l3.insert(line)
        if victim is not None:
            # Inclusive L3: back-invalidate every private copy.
            for owner in self._directory.pop(victim, ()):  # pragma: no branch
                self._l1[owner].invalidate(victim)
                self._l2[owner].invalidate(victim)
                self.invalidations += 1
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.writebacks += 1
                writebacks.append(victim << 6)

    def _drop_private(self, core: int, line: int) -> None:
        """Remove a core from a line's sharer set if it lost all copies."""
        if line in self._l1[core] or line in self._l2[core]:
            return
        owners = self._directory.get(line)
        if owners is not None:
            owners.discard(core)
            if not owners:
                del self._directory[line]

    def _invalidate_remote(self, core: int, line: int) -> bool:
        """Invalidate other cores' copies for an RFO; True if any."""
        owners = self._directory.get(line)
        if not owners:
            return False
        others = [c for c in owners if c != core]
        for other in others:
            self._l1[other].invalidate(line)
            self._l2[other].invalidate(line)
            owners.discard(other)
            self.invalidations += 1
        return bool(others)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def level_stats(self) -> dict[str, CacheLevelStats]:
        """Stats keyed by level name."""
        return {"L1": self.l1_stats, "L2": self.l2_stats, "L3": self.l3_stats}
