"""Bounded-window core timing model.

Each core replays one thread's trace against the shared cache hierarchy
and HMC device.  The model captures the first-order effects the paper
builds on:

- non-memory instructions retire at the issue width;
- ordinary loads overlap through a bounded outstanding-miss window
  (memory-level parallelism);
- host atomics serialize: the write buffer drains, the pipeline freezes
  for the duration of the cache walk + coherence + memory RMW
  (Section II-D / Figure 9's Atomic-inCore and Atomic-inCache);
- offloaded PIM atomics are plain memory requests — posted when the
  program ignores the old value, blocking the dependent consumer when
  it does not (Figure 8);
- in GraphPIM mode, every PMR access bypasses the caches.

Clocks are floats in host-core cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.dram.memory_system import MemorySystem
from repro.hmc.commands import command_for_atomic
from repro.memlayout.regions import REGION_SHIFT, Region
from repro.sim.cache import CacheHierarchy
from repro.sim.config import Mode, SystemConfig
from repro.trace.events import (
    EV_ATOMIC,
    EV_BARRIER,
    EV_LOAD,
    EV_STORE,
    is_fp_op,
)

#: Core.step() return states.
STEP_OK = 0
STEP_BARRIER = 1
STEP_DONE = 2

_PROPERTY_REGION = int(Region.PROPERTY)


@dataclass
class CoreStats:
    """Per-core cycle and event accounting (aggregated by SimResult)."""

    instructions: int = 0
    issue_cycles: float = 0.0
    mem_stall_cycles: float = 0.0
    atomic_incore_cycles: float = 0.0
    atomic_incache_cycles: float = 0.0
    host_atomics: int = 0
    offloaded_atomics: int = 0
    upei_cache_atomics: int = 0
    candidate_total: int = 0
    candidate_llc_miss: int = 0
    candidate_l1_hit: int = 0
    candidate_l2_hit: int = 0
    candidate_l3_hit: int = 0

    def merge(self, other: "CoreStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def to_dict(self) -> dict:
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreStats":
        return cls(**data)

    def publish(self, registry) -> None:
        """Register this run's core counters on a metrics registry."""
        registry.counter(
            "core_instructions_total", help="retired instructions"
        ).inc(self.instructions)
        cycles = registry.counter(
            "core_cycles_total",
            help="per-core cycle attribution, summed over cores",
        )
        cycles.inc(self.issue_cycles, kind="issue")
        cycles.inc(self.mem_stall_cycles, kind="mem_stall")
        cycles.inc(self.atomic_incore_cycles, kind="atomic_incore")
        cycles.inc(self.atomic_incache_cycles, kind="atomic_incache")
        atomics = registry.counter(
            "core_atomics_total", help="atomic instructions by path"
        )
        atomics.inc(self.host_atomics, path="host")
        atomics.inc(self.offloaded_atomics, path="offloaded")
        atomics.inc(self.upei_cache_atomics, path="upei_cache")
        candidates = registry.counter(
            "core_candidate_atomics_total",
            help="baseline offload candidates by where they hit",
        )
        candidates.inc(self.candidate_llc_miss, hit="llc_miss")
        candidates.inc(self.candidate_l1_hit, hit="l1")
        candidates.inc(self.candidate_l2_hit, hit="l2")
        candidates.inc(self.candidate_l3_hit, hit="l3")


class Core:
    """Replays one thread trace; shared resources are injected."""

    def __init__(
        self,
        core_id: int,
        events: list,
        config: SystemConfig,
        hierarchy: CacheHierarchy,
        memory: MemorySystem,
        recorder=None,
    ):
        self.core_id = core_id
        self.events = events
        self.pos = 0
        self.t = 0.0
        self.config = config
        self.hierarchy = hierarchy
        self.memory = memory
        self.outstanding: list[float] = []
        self.stats = CoreStats()
        self.pending_barrier: int | None = None
        # Hoisted so the fast path is one None check per potential span.
        self._rec = (
            recorder if recorder is not None and recorder.enabled else None
        )
        if self._rec is not None:
            self._rec.label("cores", core_id, f"core {core_id}")

        # Hoisted hot-path constants.
        self._inv_issue = 1.0 / config.issue_width
        self._mlp = config.mlp
        self._mode = config.mode
        self._is_graphpim = config.mode is Mode.GRAPHPIM
        self._bypass = (
            config.mode is Mode.GRAPHPIM and config.pmr_bypass
        )
        self._is_upei = config.mode is Mode.UPEI
        self._is_baseline = config.mode is Mode.BASELINE
        self._fp_ext = config.fp_extension
        self._freeze = config.atomic_freeze_cycles
        self._fp_extra = config.fp_atomic_extra_cycles
        self._upei_op = config.upei_host_op_cycles
        self._uc_posted = config.uc_posted_issue_cycles
        self._offload_issue = config.offload_issue_cycles
        self._walk_latency = (
            config.l1.latency + config.l2.latency + config.l3.latency
        )
        self._hybrid = memory.is_hybrid

    # ------------------------------------------------------------------
    # Window helpers
    # ------------------------------------------------------------------

    def _window_push(self, completion: float) -> None:
        """Track an overlappable memory op; stall if the window is full."""
        out = self.outstanding
        if len(out) >= self._mlp:
            earliest = heapq.heappop(out)
            if earliest > self.t:
                if self._rec is not None:
                    self._rec.span(
                        "cores", self.core_id, "stall:mem",
                        self.t, earliest - self.t,
                    )
                self.stats.mem_stall_cycles += earliest - self.t
                self.t = earliest
        heapq.heappush(out, completion)

    def _drain(self) -> float:
        """Write-buffer drain: wait for every outstanding op."""
        out = self.outstanding
        latest = self.t
        while out:
            completion = heapq.heappop(out)
            if completion > latest:
                latest = completion
        waited = latest - self.t
        self.t = latest
        return waited

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Process one event; returns STEP_OK / STEP_BARRIER / STEP_DONE."""
        if self.pos >= len(self.events):
            return STEP_DONE
        event = self.events[self.pos]
        self.pos += 1
        kind = event[0]

        if kind == EV_BARRIER:
            gap = event[2]
            if gap:
                self.stats.instructions += gap
                issue = gap * self._inv_issue
                self.t += issue
                self.stats.issue_cycles += issue
            self.pending_barrier = event[1]
            return STEP_BARRIER

        addr = event[1]
        gap = event[3]
        n_instr = gap + 1
        self.stats.instructions += n_instr
        issue = n_instr * self._inv_issue
        self.t += issue
        self.stats.issue_cycles += issue
        in_pmr = (addr >> REGION_SHIFT) == _PROPERTY_REGION
        if in_pmr and self._hybrid and not self.memory.in_hmc(addr):
            # Hybrid memory (Section III-B): DDR-resident property is
            # processed conventionally — cached, host atomics.
            in_pmr = False

        if kind == EV_LOAD:
            self._load(addr, in_pmr)
        elif kind == EV_STORE:
            self._store(addr, in_pmr)
        else:  # EV_ATOMIC
            self._atomic(addr, in_pmr, event[4], event[5])
        return STEP_OK

    # ------------------------------------------------------------------
    # Loads / stores
    # ------------------------------------------------------------------

    def _load(self, addr: int, in_pmr: bool) -> None:
        if in_pmr and self._bypass:
            # UC semantics: bypass the hierarchy, fetch from HMC.
            self._window_push(self.memory.read(addr, self.t))
            return
        level, latency, _coh, writebacks = self.hierarchy.access(
            self.core_id, addr, False
        )
        if level == 0:
            t_mem = self.t + latency
            completion = self.memory.read(addr, t_mem)
            for wb_addr in writebacks:
                self.memory.write(wb_addr, t_mem)
            self._window_push(completion)
        elif level >= 2:
            # L2/L3 hits are long enough to occupy a window slot.
            self._window_push(self.t + latency)
        # L1 hits are absorbed by the out-of-order window.

    def _store(self, addr: int, in_pmr: bool) -> None:
        if in_pmr and self._bypass:
            # UC store: posted, but strongly ordered — the core waits
            # for acceptance by the memory system.
            self.memory.write(addr, self.t)
            self.t += self._uc_posted
            self.stats.mem_stall_cycles += self._uc_posted
            return
        level, latency, _coh, writebacks = self.hierarchy.access(
            self.core_id, addr, True
        )
        if level == 0:
            # Write-allocate: the line fill occupies a window slot; the
            # store itself retires through the store buffer.
            t_mem = self.t + latency
            completion = self.memory.read(addr, t_mem)
            for wb_addr in writebacks:
                self.memory.write(wb_addr, t_mem)
            self._window_push(completion)

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------

    def _atomic(self, addr: int, in_pmr: bool, op, with_return: bool) -> None:
        offloadable = in_pmr and (self._fp_ext or not is_fp_op(op))
        if self._is_graphpim and offloadable:
            self._pim_atomic(addr, op, with_return)
        elif self._is_upei and offloadable:
            self._upei_atomic(addr, op, with_return)
        else:
            self._host_atomic(addr, in_pmr, op)

    def _host_atomic(self, addr: int, candidate: bool, op) -> None:
        """Conventional lock-prefixed RMW in the host core."""
        stats = self.stats
        t_start = self.t
        drain_wait = self._drain()
        level, latency, coherence_hit, writebacks = self.hierarchy.access(
            self.core_id, addr, True
        )
        if candidate and self._is_baseline:
            stats.candidate_total += 1
            if level == 0:
                stats.candidate_llc_miss += 1
            elif level == 1:
                stats.candidate_l1_hit += 1
            elif level == 2:
                stats.candidate_l2_hit += 1
            else:
                stats.candidate_l3_hit += 1

        mem_latency = 0.0
        if level == 0:
            t_mem = self.t + latency
            completion = self.memory.read(addr, t_mem)
            for wb_addr in writebacks:
                self.memory.write(wb_addr, t_mem)
            mem_latency = completion - t_mem
        coherence_penalty = (
            CacheHierarchy.COHERENCE_PENALTY if coherence_hit else 0.0
        )
        fp_extra = self._fp_extra if is_fp_op(op) else 0.0

        incore = drain_wait + self._freeze + mem_latency + fp_extra
        incache = latency + coherence_penalty
        self.t += self._freeze + mem_latency + fp_extra + latency + coherence_penalty
        stats.atomic_incore_cycles += incore
        stats.atomic_incache_cycles += incache
        stats.host_atomics += 1
        if self._rec is not None:
            self._rec.span(
                "cores", self.core_id, "atomic:host",
                t_start, self.t - t_start,
                args={"op": op.name, "hit_level": level},
            )

    def _pim_atomic(self, addr: int, op, with_return: bool) -> None:
        """GraphPIM: offload to the HMC logic layer via the POU."""
        command = command_for_atomic(op)
        t_start = self.t
        completion, _returns = self.memory.pim_atomic(
            command, addr, self.t, with_return
        )
        self.stats.offloaded_atomics += 1
        # Every HMC atomic returns a response (at minimum the atomic
        # flag, Table I/V), and the PMR is uncacheable, so the request
        # is strongly ordered: the core waits for the response before
        # the dependent instruction block (Figure 8) can retire.  This
        # wait is a memory stall, not atomic-instruction overhead.
        if completion > self.t:
            self.stats.mem_stall_cycles += completion - self.t
            self.t = completion
        self.t += self._offload_issue
        self.stats.mem_stall_cycles += self._offload_issue
        if self._rec is not None:
            self._rec.span(
                "cores", self.core_id, "atomic:pim",
                t_start, self.t - t_start,
                args={"op": op.name, "cmd": command.value},
            )

    def _upei_atomic(self, addr: int, op, with_return: bool) -> None:
        """Idealized PEI: host-side execution on cache hit, else offload.

        The locality probe and cache walk are on the critical path (PEI
        checks the cache before dispatching), but coherence management
        is free — this is the configuration's idealization.
        """
        stats = self.stats
        t_start = self.t
        level = self.hierarchy.probe(self.core_id, addr)
        if level:
            _level, latency, _coh, _wb = self.hierarchy.access(
                self.core_id, addr, True
            )
            self.t += latency + self._upei_op
            stats.upei_cache_atomics += 1
            stats.atomic_incache_cycles += latency + self._upei_op
            if self._rec is not None:
                self._rec.span(
                    "cores", self.core_id, "atomic:upei",
                    t_start, self.t - t_start,
                    args={"op": op.name, "hit_level": level},
                )
            return
        command = command_for_atomic(op)
        self.t += self._walk_latency
        stats.atomic_incache_cycles += self._walk_latency
        completion, _returns = self.memory.pim_atomic(
            command, addr, self.t, with_return
        )
        # PEI does not bypass the cache for PIM data: the line is
        # installed alongside the offloaded op (coherence write-back is
        # free under the idealization), so later candidates can hit.
        self.hierarchy.access(self.core_id, addr, True)
        stats.offloaded_atomics += 1
        if completion > self.t:
            stats.mem_stall_cycles += completion - self.t
            self.t = completion
        self.t += self._offload_issue
        stats.mem_stall_cycles += self._offload_issue
        if self._rec is not None:
            self._rec.span(
                "cores", self.core_id, "atomic:upei",
                t_start, self.t - t_start,
                args={"op": op.name, "hit_level": 0},
            )
