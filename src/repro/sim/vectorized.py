"""Vectorized batch simulation kernel over the columnar trace IR.

The per-event reference interpreter (:mod:`repro.sim.core` +
:mod:`repro.hmc.device`) walks one tuple at a time through a deep call
stack: ``Core.step`` -> route decision -> ``CacheHierarchy.access`` ->
``MemorySystem`` -> ``HmcDevice`` -> per-resource reservation helpers,
with enum/dict lookups, ``Counter`` updates, and numpy scalar indexing
on every event.  This module replaces that with a two-phase kernel over
:class:`~repro.trace.columnar.ColumnarTrace` arrays:

1. **Vectorized precompute** (numpy mask algebra): per-event route
   codes (PMR membership, atomic-offload classification, cache-vs-
   bypass), issue deltas, cache-set indices, per-vault/bank columns,
   and per-atomic transaction lookup tables — everything that does not
   depend on simulated time is computed for all events at once.
2. **Fused interpretation**: one flat loop drains the same
   smallest-clock-first scheduler as the reference over the precomputed
   columns.  The loop itself is lowered to C (``_kernel.c``, compiled on
   demand by :mod:`repro.sim._cbuild`): LRU sets become oldest-first
   arrays, the sharer directory becomes a line -> core-bitmask hash map,
   link/bank/FU reservations become flat double arrays, and transaction
   ``Counter``\\ s become index-addressed arrays rebuilt in first-seen
   order at the end.  CPython floats *are* C doubles, so replaying the
   reference's operations in the reference's order — with FMA
   contraction disabled — reproduces its results bit for bit.

**Bit-identity contract.**  The kernel reproduces the reference's
``SimResult.to_dict()`` byte for byte.  That constrains every floating
point operation: additions stay term-by-term in the reference's
left-associated order, constant sub-sums are precomputed only where the
reference also evaluates them as one expression (bank occupancies), and
``max``/tie semantics, Counter insertion order, and per-core
accumulation order are all replicated.  The FU pools may use heaps
because only the pool *minimum* is observable (the reference picks the
first minimal index; the pool multiset and its minimum evolve
identically either way).

**Fallback.**  :func:`try_simulate_vectorized` returns
``(None, reason)`` instead of a result when the input uses a feature
the kernel does not model — fault injection, hybrid DDR memory,
timeline recording, an unencodable trace — or when no C compiler is
available to build the loop, and the engine dispatcher
(:func:`repro.sim.system.simulate_with_engine`) runs the reference
instead.  The reference interpreter is unchanged and remains the
oracle.
"""

from __future__ import annotations

import ctypes
from typing import Optional

import numpy as np

from repro.common.errors import SimulationError, TraceError
from repro.hmc.commands import HOST_TO_HMC
from repro.hmc.device import HmcStats
from repro.hmc.packets import (
    TransactionKind,
    atomic_transaction_kind,
    flits_for,
)
from repro.memlayout.regions import REGION_SHIFT, Region
from repro.sim._cbuild import load_kernel
from repro.sim.cache import CacheHierarchy, CacheLevelStats
from repro.sim.config import Mode, SystemConfig
from repro.sim.core import CoreStats
from repro.trace.events import (
    EV_ATOMIC,
    EV_BARRIER,
    EV_LOAD,
    AtomicOp,
)
from repro.trace.stream import Trace

#: Per-event route codes assigned by the precompute phase.
_R_BARRIER = 0
_R_LOAD_CACHE = 1
_R_LOAD_BYPASS = 2
_R_STORE_CACHE = 3
_R_STORE_BYPASS = 4
_R_ATOMIC_HOST = 5
_R_ATOMIC_PIM = 6
_R_ATOMIC_UPEI = 7
#: Host atomic that is an offload candidate (baseline mode, PMR target).
_R_ATOMIC_HOST_CAND = 8

#: Fixed transaction-kind indexing for the counter arrays; rebuilt into
#: Counters in first-seen order at the end of a run.
_TK_LIST = (
    TransactionKind.READ_64,
    TransactionKind.WRITE_64,
    TransactionKind.ATOMIC_NO_RETURN,
    TransactionKind.ATOMIC_WITH_RETURN,
    TransactionKind.ATOMIC_CAS_LIKE,
    TransactionKind.ATOMIC_COMPARE,
)
_TK_READ = 0
_TK_WRITE = 1

_PROPERTY_REGION = int(Region.PROPERTY)
_MAX_OP = max(int(op) for op in AtomicOp)


def _atomic_luts() -> tuple[np.ndarray, np.ndarray]:
    """(op, with_return) -> transaction-kind index / response FLITs."""
    tk = np.zeros((_MAX_OP + 1, 2), dtype=np.int64)
    respf = np.zeros((_MAX_OP + 1, 2), dtype=np.int64)
    index = {kind: i for i, kind in enumerate(_TK_LIST)}
    for op, command in HOST_TO_HMC.items():
        for ret in (0, 1):
            kind = atomic_transaction_kind(command, bool(ret))
            tk[int(op), ret] = index[kind]
            respf[int(op), ret] = flits_for(kind)[1]
    return tk, respf


_TK_LUT, _RESPF_LUT = _atomic_luts()


class _KernelResourceError(Exception):
    """Internal: the C kernel could not allocate its working state.

    Caught by :func:`try_simulate_vectorized` and converted into a
    decline — nothing observable has happened yet, so falling back to
    the reference interpreter is safe.
    """


def decline_reason(
    trace: Trace, config: SystemConfig, recorder=None
) -> Optional[str]:
    """Why the vectorized kernel will not take this input, or ``None``.

    Every reason here is a feature the reference interpreter models and
    the kernel (so far) does not; declined inputs run on the reference
    via the engine dispatcher's per-input fallback.
    """
    if recorder is not None and recorder.enabled:
        return "timeline recording requested"
    if config.faults is not None and config.faults.enabled:
        return "fault-injection plan enabled"
    if config.dram is not None:
        return "hybrid DDR memory configured"
    if (
        config.hmc.fp_fus_per_vault == 0
        and config.fp_extension
        and config.mode in (Mode.GRAPHPIM, Mode.UPEI)
    ):
        # The reference raises a specific SimulationError the moment an
        # FP atomic offloads into a zero-FP-FU cube; let it.
        return "FP offload enabled with zero FP functional units"
    if trace.num_threads > 64:
        # The C kernel's sharer directory is a 64-bit core bitmask.
        return "more than 64 threads"
    if config.mlp < 1:
        return "non-positive MLP window"
    if config.hmc.fus_per_vault < 1:
        return "no integer functional units per vault"
    if (
        config.l1.num_sets < 1
        or config.l2.num_sets < 1
        or config.l3.num_sets < 1
    ):
        return "degenerate cache geometry (zero sets)"
    if config.hmc.num_vaults < 1 or config.hmc.banks_per_vault < 1:
        return "degenerate HMC geometry"
    _lib, kernel_reason = load_kernel()
    if _lib is None:
        return f"C batch kernel unavailable: {kernel_reason}"
    return None


def try_simulate_vectorized(
    trace: Trace, config: SystemConfig, recorder=None, publisher=None
):
    """Run the batch kernel, or decline.

    Returns ``(SimResult, None)`` on success and ``(None, reason)``
    when the kernel declines the input.  Raises exactly where the
    reference would raise for inputs both engines accept (barrier
    mismatches, stuck barriers).

    ``publisher`` receives coarse chunk-boundary progress frames: the
    C loop cannot be interrupted from Python, so a vectorized run emits
    one ``precompute`` frame before the kernel and one ``kernel`` frame
    after it rather than the interpreter's every-N-events cadence.
    Publishing never affects kernel inputs, so bit-identity holds.
    """
    reason = decline_reason(trace, config, recorder)
    if reason is not None:
        return None, reason
    try:
        col = trace.columnar()
    except TraceError as exc:
        return None, f"trace not columnar-encodable: {exc}"
    op = col.op
    if col.num_events and bool(
        np.any((col.kind == EV_ATOMIC) & ((op < 0) | (op > _MAX_OP)))
    ):
        # command_for_atomic would raise ConfigError; keep that error
        # path on the reference interpreter.
        return None, "atomic op outside the HMC command table"
    if col.num_events and bool(np.any(col.addr < 0)):
        # Python floor-mod vs C trunc-mod differ below zero; leave
        # pathological traces to the reference.
        return None, "negative addresses in trace"
    pub = publisher if publisher is not None and publisher.enabled else None
    try:
        return _simulate_columnar(col, config, pub), None
    except _KernelResourceError as exc:
        return None, str(exc)


def _publish_chunk(pub, phase, events_done, events_total, start,
                   sim_cycles=0.0, result=None):
    """One chunk-boundary progress frame (precompute done / kernel done).

    Reads finished state only — the kernel has either not started or
    already returned — so publishing cannot perturb the simulation.
    """
    import time

    from repro.obs.progress import ProgressSnapshot

    elapsed = time.monotonic() - start
    pub.publish(
        ProgressSnapshot(
            label="",
            phase=phase,
            events_done=events_done,
            events_total=events_total,
            sim_cycles=(
                result.cycles if result is not None else sim_cycles
            ),
            instructions=(
                result.core_stats.instructions if result is not None else 0
            ),
            offloaded_atomics=(
                result.core_stats.offloaded_atomics
                if result is not None else 0
            ),
            host_atomics=(
                result.core_stats.host_atomics if result is not None else 0
            ),
            elapsed_s=elapsed,
            eta_s=None,
        )
    )


def _simulate_columnar(col, config: SystemConfig, pub=None):
    """The fused kernel proper.  See the module docstring for rules."""
    import time

    from repro.sim.system import SimResult

    start_wall = time.monotonic() if pub is not None else 0.0
    cfg = config.hmc
    T = col.num_threads
    mode = config.mode

    # ------------------------------------------------------------------
    # Phase 1: vectorized precompute over the whole event stream.
    # ------------------------------------------------------------------
    kind = col.kind
    gap = col.gap
    is_barrier = kind == EV_BARRIER
    is_load = kind == EV_LOAD
    is_atomic = kind == EV_ATOMIC
    # Barriers charge `gap` instructions, memory events `gap + 1`; the
    # float product below is elementwise IEEE-identical to the scalar
    # reference (`n_instr * (1.0 / issue_width)`).
    n_instr = gap + (~is_barrier)
    inv_issue = 1.0 / config.issue_width
    issue = n_instr.astype(np.float64) * inv_issue

    in_pmr = (col.addr >> REGION_SHIFT) == _PROPERTY_REGION
    op_col = col.op
    is_fp = (op_col == int(AtomicOp.FP_ADD)) | (
        op_col == int(AtomicOp.FP_SUB)
    )
    offloadable = in_pmr & (config.fp_extension | ~is_fp)
    bypass = mode is Mode.GRAPHPIM and config.pmr_bypass

    pmr_ls = in_pmr if bypass else np.zeros(len(kind), dtype=bool)
    if mode is Mode.GRAPHPIM:
        atomic_off = is_atomic & offloadable
        route_off = _R_ATOMIC_PIM
    elif mode is Mode.UPEI:
        atomic_off = is_atomic & offloadable
        route_off = _R_ATOMIC_UPEI
    else:
        atomic_off = np.zeros(len(kind), dtype=bool)
        route_off = _R_ATOMIC_PIM  # unused
    atomic_host = is_atomic & ~atomic_off
    if mode is Mode.BASELINE:
        atomic_cand = atomic_host & in_pmr
        atomic_host = atomic_host & ~in_pmr
    else:
        atomic_cand = np.zeros(len(kind), dtype=bool)

    route = np.select(
        [
            is_barrier,
            is_load & pmr_ls,
            is_load,
            atomic_off,
            atomic_cand,
            atomic_host,
            pmr_ls,  # remaining: stores
        ],
        [
            _R_BARRIER,
            _R_LOAD_BYPASS,
            _R_LOAD_CACHE,
            route_off,
            _R_ATOMIC_HOST_CAND,
            _R_ATOMIC_HOST,
            _R_STORE_BYPASS,
        ],
        default=_R_STORE_CACHE,
    )

    n1sets = config.l1.num_sets
    n2sets = config.l2.num_sets
    n3sets = config.l3.num_sets
    line = col.addr >> 6
    num_vaults = cfg.num_vaults
    banks_per_vault = cfg.banks_per_vault

    # Atomic transaction lookup (garbage for non-atomics, never read).
    op_idx = np.where(is_atomic, op_col, 0)
    ret_idx = (col.ret != 0).astype(np.int64)
    tk_ev = _TK_LUT[op_idx, ret_idx]
    respf_ev = _RESPF_LUT[op_idx, ret_idx]

    # Contiguous int64/float64 columns handed straight to the C loop.
    contig = np.ascontiguousarray
    route_a = contig(route, dtype=np.int64)
    line_a = contig(line, dtype=np.int64)
    s1_a = contig(line % n1sets, dtype=np.int64)
    s2_a = contig(line % n2sets, dtype=np.int64)
    s3_a = contig(line % n3sets, dtype=np.int64)
    vault_a = contig(line % num_vaults, dtype=np.int64)
    bank_a = contig((col.addr >> 11) % banks_per_vault, dtype=np.int64)
    tk_a = contig(tk_ev, dtype=np.int64)
    respf_a = contig(respf_ev, dtype=np.int64)
    isfp_a = contig(is_fp, dtype=np.int64)
    bid_a = contig(col.size, dtype=np.int64)  # barrier ids ride size
    ninstr_a = contig(n_instr, dtype=np.int64)
    issue_a = contig(issue, dtype=np.float64)
    starts_a = contig(col.starts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Constants (same expressions/associativity as the reference).
    # ------------------------------------------------------------------
    lat1 = config.l1.latency
    lat12 = config.l1.latency + config.l2.latency
    lat123 = config.l1.latency + config.l2.latency + config.l3.latency
    walk_latency = lat123
    coherence_penalty = CacheHierarchy.COHERENCE_PENALTY
    freeze = config.atomic_freeze_cycles
    fp_extra = config.fp_atomic_extra_cycles
    upei_op = config.upei_host_op_cycles
    uc_posted = config.uc_posted_issue_cycles
    offload_issue = config.offload_issue_cycles
    mlp = config.mlp
    prefetch = config.prefetch_next_line
    l1_ways = config.l1.ways
    l2_ways = config.l2.ways
    l3_ways = config.l3.ways

    link_lat = cfg.link_latency
    vault_oh = cfg.vault_overhead
    tRCD = cfg.tRCD
    tCL = cfg.tCL
    burst = cfg.burst
    fu_op = cfg.fu_op
    fp_fu_op = cfg.fp_fu_op
    occ_read = cfg.tRAS + cfg.tRP
    occ_write = cfg.tRCD + cfg.burst + cfg.tWR + cfg.tRP
    if cfg.atomic_locks_bank:
        occ_at_int = cfg.tRCD + cfg.tCL + cfg.fu_op + cfg.tWR + cfg.tRP
        occ_at_fp = cfg.tRCD + cfg.tCL + cfg.fp_fu_op + cfg.tWR + cfg.tRP
    else:
        occ_at_int = cfg.tRAS + cfg.tRP
        occ_at_fp = occ_at_int
    rate = cfg.flits_per_cycle_per_direction
    c1 = 1 / rate
    c2 = 2 / rate
    c5 = 5 / rate

    # ------------------------------------------------------------------
    # Phase 2: the fused loop, lowered to C.
    # ------------------------------------------------------------------
    cfg_i = np.array(
        [
            mlp,
            l1_ways,
            l2_ways,
            l3_ways,
            n1sets,
            n2sets,
            n3sets,
            num_vaults,
            banks_per_vault,
            cfg.fus_per_vault,
            max(cfg.fp_fus_per_vault, 1),
            1 if prefetch else 0,
        ],
        dtype=np.int64,
    )
    cfg_d = np.array(
        [
            lat1,
            lat12,
            lat123,
            coherence_penalty,
            freeze,
            fp_extra,
            upei_op,
            uc_posted,
            offload_issue,
            link_lat,
            vault_oh,
            tRCD,
            tCL,
            burst,
            fu_op,
            fp_fu_op,
            occ_read,
            occ_write,
            occ_at_int,
            occ_at_fp,
            rate,
            c1,
            c2,
            c5,
        ],
        dtype=np.float64,
    )
    # Output buffers: per-core accumulators grouped field-major, global
    # counters, and the transaction-kind count/order block.
    core_d = np.zeros(5 * T, dtype=np.float64)
    core_i = np.zeros(9 * T, dtype=np.int64)
    out_i = np.zeros(18, dtype=np.int64)
    out_d = np.zeros(3, dtype=np.float64)
    tkbuf = np.zeros(25, dtype=np.int64)

    if pub is not None:
        # Chunk boundary 1: precompute finished, kernel about to run.
        _publish_chunk(
            pub, "precompute", 0, col.num_events, start_wall
        )

    lib, _unavailable = load_kernel()  # non-None; decline_reason checked
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64p = ctypes.POINTER(ctypes.c_double)

    def ip(a):
        return a.ctypes.data_as(i64p)

    def fp(a):
        return a.ctypes.data_as(f64p)

    rc = lib.graphpim_simulate(
        col.num_events,
        T,
        ip(route_a),
        ip(line_a),
        ip(s1_a),
        ip(s2_a),
        ip(s3_a),
        ip(vault_a),
        ip(bank_a),
        ip(tk_a),
        ip(respf_a),
        ip(isfp_a),
        ip(bid_a),
        ip(ninstr_a),
        fp(issue_a),
        ip(starts_a),
        ip(cfg_i),
        fp(cfg_d),
        fp(core_d),
        ip(core_i),
        ip(out_i),
        fp(out_d),
        ip(tkbuf),
    )
    if rc == 1:
        raise SimulationError(
            f"core {int(out_i[14])} reached barrier {int(out_i[15])} "
            f"while others wait at {int(out_i[16])}"
        )
    if rc == 2:
        raise SimulationError(
            "simulation ended with cores stuck at a barrier "
            f"(barrier {int(out_i[15])}, {int(out_i[17])} cores)"
        )
    if rc != 0:
        raise _KernelResourceError(
            f"C kernel could not allocate working state (rc={rc})"
        )

    # ------------------------------------------------------------------
    # Results: rebuild the reference's stats objects field for field.
    # tolist() yields native Python ints/floats (bit-preserving), which
    # keeps SimResult.to_dict() JSON byte-identical.
    # ------------------------------------------------------------------
    cd = core_d.tolist()
    ci = core_i.tolist()
    total = CoreStats()
    for i in range(T):
        total.instructions = total.instructions + ci[i]
        total.issue_cycles = total.issue_cycles + cd[T + i]
        total.mem_stall_cycles = total.mem_stall_cycles + cd[2 * T + i]
        total.atomic_incore_cycles = (
            total.atomic_incore_cycles + cd[3 * T + i]
        )
        total.atomic_incache_cycles = (
            total.atomic_incache_cycles + cd[4 * T + i]
        )
        total.host_atomics = total.host_atomics + ci[T + i]
        total.offloaded_atomics = total.offloaded_atomics + ci[2 * T + i]
        total.upei_cache_atomics = total.upei_cache_atomics + ci[3 * T + i]
        total.candidate_total = total.candidate_total + ci[4 * T + i]
        total.candidate_llc_miss = total.candidate_llc_miss + ci[5 * T + i]
        total.candidate_l1_hit = total.candidate_l1_hit + ci[6 * T + i]
        total.candidate_l2_hit = total.candidate_l2_hit + ci[7 * T + i]
        total.candidate_l3_hit = total.candidate_l3_hit + ci[8 * T + i]

    oi = out_i.tolist()
    od = out_d.tolist()
    tkl = tkbuf.tolist()
    hmc_stats = HmcStats()
    for j in range(tkl[24]):
        k = tkl[18 + j]
        tkind = _TK_LIST[k]
        hmc_stats.requests[tkind] = tkl[k]
        hmc_stats.request_flits[tkind] = tkl[6 + k]
        hmc_stats.response_flits[tkind] = tkl[12 + k]
    hmc_stats.dram_activates = oi[9]
    hmc_stats.dram_reads = oi[10]
    hmc_stats.dram_writes = oi[11]
    hmc_stats.fu_int_ops = oi[12]
    hmc_stats.fu_fp_ops = oi[13]
    hmc_stats.bank_wait_cycles = od[0]
    hmc_stats.link_wait_cycles = od[1] + od[2]

    result = SimResult(
        config=config,
        cycles=max(cd[:T]),
        core_stats=total,
        cache_stats={
            "L1": CacheLevelStats(hits=oi[0], misses=oi[1]),
            "L2": CacheLevelStats(hits=oi[2], misses=oi[3]),
            "L3": CacheLevelStats(hits=oi[4], misses=oi[5]),
        },
        hmc_stats=hmc_stats,
        cache_invalidations=oi[6],
        cache_writebacks=oi[7],
        dram_stats=None,
        cache_prefetches=oi[8],
    )
    if pub is not None:
        # Chunk boundary 2: kernel returned; report final totals.
        _publish_chunk(
            pub, "kernel", col.num_events, col.num_events, start_wall,
            result=result,
        )
    return result

