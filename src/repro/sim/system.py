"""Multi-core system assembly and the deterministic scheduler.

Cores advance smallest-clock-first so shared-resource reservations
(L3, HMC banks, SerDes links) are claimed in a globally consistent
time order; barriers synchronize all cores to the slowest.  The result
is bit-for-bit reproducible across runs.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.common.engine import EngineInfo, EngineSelection, resolve_engine
from repro.common.errors import SimulationError
from repro.dram.device import DdrDevice, DdrStats
from repro.dram.memory_system import MemorySystem
from repro.hmc.device import HmcDevice, HmcStats
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import CacheHierarchy, CacheLevelStats
from repro.sim.config import SystemConfig
from repro.sim.core import STEP_BARRIER, STEP_DONE, Core, CoreStats
from repro.trace.stream import Trace

#: Version of the :meth:`SimResult.to_dict` payload layout.  Bump when
#: fields are added/renamed so stale cache entries and cross-process
#: payloads are rejected instead of silently misread.
#: v2: HmcStats fault counters + SystemConfig.faults.
RESULT_SCHEMA_VERSION = 2


@dataclass
class SimResult:
    """Outcome of one (trace, configuration) timing simulation."""

    config: SystemConfig
    cycles: float
    core_stats: CoreStats
    cache_stats: dict[str, CacheLevelStats]
    hmc_stats: HmcStats
    cache_invalidations: int = 0
    cache_writebacks: int = 0
    #: DDR-side stats for hybrid-memory runs (None for pure HMC).
    dram_stats: DdrStats | None = None
    cache_prefetches: int = 0

    @property
    def instructions(self) -> int:
        return self.core_stats.instructions

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle across all cores."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if self.cycles == 0:
            raise SimulationError("cannot compute speedup of a zero-cycle run")
        return baseline.cycles / self.cycles

    # ------------------------------------------------------------------
    # Serialization (result cache, worker IPC, `repro run --json`)
    # ------------------------------------------------------------------

    def to_dict(self, include_metrics: bool = False) -> dict:
        """Stable JSON-safe payload; round-trips via :meth:`from_dict`.

        ``include_metrics`` appends a ``"metrics"`` key holding the
        versioned :class:`~repro.obs.metrics.MetricsRegistry` snapshot
        of every stats object.  The flag defaults to off so cached
        payloads and worker IPC stay byte-for-byte what they were;
        :meth:`from_dict` ignores the key either way.
        """
        payload = self._base_dict()
        if include_metrics:
            payload["metrics"] = self.metrics_snapshot()
        return payload

    def _base_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "core_stats": self.core_stats.to_dict(),
            "cache_stats": {
                level: stats.to_dict()
                for level, stats in self.cache_stats.items()
            },
            "hmc_stats": self.hmc_stats.to_dict(),
            "cache_invalidations": self.cache_invalidations,
            "cache_writebacks": self.cache_writebacks,
            "dram_stats": (
                self.dram_stats.to_dict()
                if self.dram_stats is not None
                else None
            ),
            "cache_prefetches": self.cache_prefetches,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises :class:`SimulationError` on schema mismatch so cache
        readers can treat incompatible entries as misses.
        """
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported SimResult schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            config=SystemConfig.from_dict(data["config"]),
            cycles=data["cycles"],
            core_stats=CoreStats.from_dict(data["core_stats"]),
            cache_stats={
                level: CacheLevelStats.from_dict(stats)
                for level, stats in data["cache_stats"].items()
            },
            hmc_stats=HmcStats.from_dict(data["hmc_stats"]),
            cache_invalidations=data["cache_invalidations"],
            cache_writebacks=data["cache_writebacks"],
            dram_stats=(
                DdrStats.from_dict(data["dram_stats"])
                if data["dram_stats"] is not None
                else None
            ),
            cache_prefetches=data["cache_prefetches"],
        )

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    def publish(self, registry: MetricsRegistry) -> None:
        """Publish every component's stats into ``registry``.

        Fans out to the per-component ``publish`` hooks (core, cache
        levels, HMC, optional DDR) and adds the run-level quantities
        that live on the result itself.
        """
        self.core_stats.publish(registry)
        for level, stats in self.cache_stats.items():
            stats.publish(registry, level)
        self.hmc_stats.publish(registry)
        if self.dram_stats is not None:
            self.dram_stats.publish(registry)
        registry.gauge(
            "sim_cycles", help="end-to-end simulated cycles"
        ).set(self.cycles)
        registry.gauge(
            "sim_ipc", help="aggregate instructions per cycle"
        ).set(self.ipc)
        coherence = registry.counter(
            "cache_coherence_events_total",
            help="hierarchy-level coherence traffic",
        )
        coherence.inc(self.cache_invalidations, event="invalidation")
        coherence.inc(self.cache_writebacks, event="writeback")
        coherence.inc(self.cache_prefetches, event="prefetch")

    def metrics_snapshot(self) -> dict:
        """Versioned JSON snapshot of this result's metric registry."""
        registry = MetricsRegistry()
        self.publish(registry)
        return registry.snapshot()

    # ------------------------------------------------------------------
    # Figure 9 breakdown
    # ------------------------------------------------------------------

    def execution_breakdown(self) -> dict[str, float]:
        """Cycle shares: Atomic-inCore / Atomic-inCache / Other.

        Per-core overheads are summed and normalized by total core-time
        (cycles x cores is implicit: stats are already summed over
        cores, so we normalize by summed per-core time, approximated by
        cycles x num_cores_active via total attribution).
        """
        stats = self.core_stats
        total = self.cycles
        # Overheads are per-core sums; convert to a per-core average
        # share by dividing by (cycles * active cores). We recover the
        # active-core count from issue+stall+atomic attribution.
        attributed = (
            stats.issue_cycles
            + stats.mem_stall_cycles
            + stats.atomic_incore_cycles
            + stats.atomic_incache_cycles
        )
        denom = max(attributed, 1e-9)
        scale = 1.0  # shares of attributed time
        incore = stats.atomic_incore_cycles / denom * scale
        incache = stats.atomic_incache_cycles / denom * scale
        other = 1.0 - incore - incache
        return {
            "Atomic-inCore": incore,
            "Atomic-inCache": incache,
            "Other": other,
            "total_cycles": total,
        }

    def pipeline_breakdown(self) -> dict[str, float]:
        """Figure 2-style top-down shares (Frontend/BadSpec synthetic).

        The trace model has no fetch or speculation path; small fixed
        frontend/bad-speculation shares are synthesized so the chart
        reads like the paper's, and the remainder splits into Retiring
        (issue) vs Backend (all stalls).  Documented in EXPERIMENTS.md.
        """
        stats = self.core_stats
        attributed = (
            stats.issue_cycles
            + stats.mem_stall_cycles
            + stats.atomic_incore_cycles
            + stats.atomic_incache_cycles
        )
        denom = max(attributed, 1e-9)
        retiring = stats.issue_cycles / denom
        frontend = 0.03
        bad_speculation = 0.04
        remaining = max(1.0 - frontend - bad_speculation, 0.0)
        retiring_share = retiring * remaining
        backend = remaining - retiring_share
        return {
            "Backend": backend,
            "Frontend": frontend,
            "BadSpeculation": bad_speculation,
            "Retiring": retiring_share,
        }

    def mpki(self) -> dict[str, float]:
        """L1D/L2/L3 misses per kilo-instruction (Figure 2 bottom)."""
        kilo = self.instructions / 1000.0
        return {
            level: stats.mpki(kilo)
            for level, stats in self.cache_stats.items()
        }

    def candidate_miss_rate(self) -> float:
        """LLC miss rate of offloading candidates (Figure 10)."""
        stats = self.core_stats
        if stats.candidate_total == 0:
            return 0.0
        return stats.candidate_llc_miss / stats.candidate_total


def simulate(
    trace: Trace, config: SystemConfig, recorder=None, engine=None,
    publisher=None,
) -> SimResult:
    """Replay ``trace`` under ``config`` and return aggregate results.

    ``recorder`` (a :class:`~repro.obs.timeline.TimelineRecorder`)
    collects execution spans in simulated time; the default ``None``
    (equivalent to the :data:`~repro.obs.timeline.NULL_RECORDER`) adds
    no per-event work and is bit-identical to a recorded run — the
    recorder only *observes* reservation decisions, never makes them.

    ``publisher`` (a :class:`~repro.obs.progress.NullPublisher`
    subclass) receives live :class:`~repro.obs.progress.ProgressSnapshot`
    frames while the simulation runs — every ``publisher.interval``
    retired events in the reference interpreter, at chunk boundaries in
    the vectorized engine.  Like the recorder it only observes: results
    are bit-identical with the publisher on or off, and the default
    ``None`` / :data:`~repro.obs.progress.NULL_PUBLISHER` path carries
    zero per-event work.

    ``engine`` picks the implementation
    (:class:`~repro.common.engine.EngineSelection` or its string form);
    the default resolves via ``REPRO_ENGINE`` and falls back to
    ``auto``.  Results are bit-identical across engines, so callers
    that don't care which one ran can ignore the parameter entirely;
    those that do care use :func:`simulate_with_engine`.
    """
    result, _info = simulate_with_engine(
        trace, config, recorder=recorder, engine=engine,
        publisher=publisher,
    )
    return result


def simulate_with_engine(
    trace: Trace, config: SystemConfig, recorder=None, engine=None,
    publisher=None,
) -> tuple[SimResult, EngineInfo]:
    """Like :func:`simulate`, but also report which engine executed.

    Under ``auto``/``vectorized`` selection the batch kernel
    (:mod:`repro.sim.vectorized`) runs whenever it can model the input;
    inputs it declines (fault plans, hybrid DDR, timeline recording,
    non-columnar traces) fall back *per input* to the per-event
    reference interpreter, reported as
    ``EngineInfo(engine="legacy", fallback=True, reason=...)``.
    """
    from repro.sim.vectorized import try_simulate_vectorized

    selection = resolve_engine(engine)
    num_threads = trace.num_threads
    if num_threads > config.num_cores:
        raise SimulationError(
            f"trace has {num_threads} threads but the system has only "
            f"{config.num_cores} cores"
        )
    rec = recorder if recorder is not None and recorder.enabled else None
    pub = publisher if publisher is not None and publisher.enabled else None
    if selection.wants_vectorized:
        result, reason = try_simulate_vectorized(
            trace, config, rec, publisher=pub
        )
        if result is not None:
            return result, EngineInfo(engine="vectorized")
        return (
            _simulate_reference(trace, config, rec, pub),
            EngineInfo(engine="legacy", fallback=True, reason=reason),
        )
    return (
        _simulate_reference(trace, config, rec, pub),
        EngineInfo(engine=str(EngineSelection.LEGACY)),
    )


def _publish_frame(pub, phase, events_done, events_total, cores, start):
    """Emit one progress frame from live interpreter state.

    Runs only on the every-N publish path, never per event; the frame
    reads (sums) simulation state without touching it, which is what
    keeps publisher-on runs bit-identical to publisher-off runs.
    """
    from repro.obs.progress import ProgressSnapshot

    elapsed = time.monotonic() - start
    eta = None
    if events_total > 0 and events_done > 0:
        remaining = max(events_total - events_done, 0)
        eta = elapsed / events_done * remaining
    pub.publish(
        ProgressSnapshot(
            label="",
            phase=phase,
            events_done=events_done,
            events_total=events_total,
            sim_cycles=max(core.t for core in cores) if cores else 0.0,
            instructions=sum(core.stats.instructions for core in cores),
            offloaded_atomics=sum(
                core.stats.offloaded_atomics for core in cores
            ),
            host_atomics=sum(core.stats.host_atomics for core in cores),
            elapsed_s=elapsed,
            eta_s=eta,
        )
    )


def _simulate_reference(
    trace: Trace, config: SystemConfig, rec, pub=None
) -> SimResult:
    """The per-event reference interpreter (the bit-identity oracle)."""
    num_threads = trace.num_threads
    if rec is not None:
        # All component clocks are host-core cycles; export converts to
        # simulated nanoseconds at the configured core frequency.
        rec.set_time_base(1.0 / config.hmc.core_ghz)
    hierarchy = CacheHierarchy(
        num_threads,
        config.l1,
        config.l2,
        config.l3,
        prefetch_next_line=config.prefetch_next_line,
    )
    hmc = HmcDevice(config.hmc, fault_plan=config.faults, recorder=rec)
    dram = DdrDevice(config.dram) if config.dram is not None else None
    memory = MemorySystem(hmc, dram, config.property_hmc_fraction)
    cores = [
        Core(i, thread.events, config, hierarchy, memory, recorder=rec)
        for i, thread in enumerate(trace.threads)
    ]

    # Smallest-clock-first scheduling with barrier synchronization.
    ready = [(core.t, core.core_id) for core in cores]
    heapq.heapify(ready)
    at_barrier: list[Core] = []
    barrier_id: int | None = None
    done_count = 0
    # Progress publishing: hoisted so the pub-off loop stays untouched.
    events_total = trace.num_events
    events_done = 0
    publish_every = pub.interval if pub is not None else 0
    publish_at = publish_every
    start_wall = time.monotonic() if pub is not None else 0.0

    while ready:
        _t, core_id = heapq.heappop(ready)
        core = cores[core_id]
        status = core.step()
        if pub is not None and status != STEP_DONE:
            events_done += 1
            if events_done >= publish_at:
                publish_at += publish_every
                _publish_frame(
                    pub, "simulate", events_done, events_total,
                    cores, start_wall,
                )
        if status == STEP_BARRIER:
            if barrier_id is None:
                barrier_id = core.pending_barrier
            elif core.pending_barrier != barrier_id:
                raise SimulationError(
                    f"core {core_id} reached barrier {core.pending_barrier} "
                    f"while others wait at {barrier_id}"
                )
            at_barrier.append(core)
            if len(at_barrier) + done_count == len(cores):
                release_time = max(c.t for c in at_barrier)
                for waiting in at_barrier:
                    wait = release_time - waiting.t
                    if rec is not None and wait > 0.0:
                        rec.span(
                            "cores", waiting.core_id, "stall:barrier",
                            waiting.t, wait,
                            args={"barrier": barrier_id},
                        )
                    # Imbalance wait counts as backend stall time.
                    waiting.stats.mem_stall_cycles += wait
                    waiting.t = release_time
                    heapq.heappush(ready, (waiting.t, waiting.core_id))
                at_barrier = []
                barrier_id = None
        elif status == STEP_DONE:
            done_count += 1
        else:
            heapq.heappush(ready, (core.t, core_id))

    if at_barrier:
        raise SimulationError(
            "simulation ended with cores stuck at a barrier "
            f"(barrier {barrier_id}, {len(at_barrier)} cores)"
        )

    if pub is not None:
        _publish_frame(
            pub, "simulate", events_done, events_total, cores, start_wall
        )

    total = CoreStats()
    for core in cores:
        total.merge(core.stats)
        if rec is not None:
            # Whole-thread execute span; stalls/atomics nest inside it.
            rec.span("cores", core.core_id, "core:execute", 0.0, core.t)
    cycles = max(core.t for core in cores)
    return SimResult(
        config=config,
        cycles=cycles,
        core_stats=total,
        cache_stats=hierarchy.level_stats(),
        hmc_stats=hmc.stats,
        cache_invalidations=hierarchy.invalidations,
        cache_writebacks=hierarchy.writebacks,
        dram_stats=dram.stats if dram else None,
        cache_prefetches=hierarchy.prefetches_issued,
    )
