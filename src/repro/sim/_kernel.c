/* Batch simulation time loop for repro.sim.vectorized.
 *
 * This is the serial half of the vectorized engine: repro.sim.vectorized
 * classifies every event with numpy mask algebra (route codes, cache-set
 * indices, vault/bank columns, FLIT lookup tables) and this translation
 * of the fused interpreter drains the same smallest-clock-first
 * scheduler as the Python reference (repro.sim.core + repro.hmc.device).
 *
 * BIT-IDENTITY CONTRACT: every double-precision operation here mirrors
 * the reference implementation's expression order exactly.  CPython
 * floats are C doubles, so identical operations in identical order give
 * identical bits — provided the compiler neither contracts multiply-adds
 * into FMAs nor reassociates.  Build with -ffp-contract=off and WITHOUT
 * -ffast-math (repro.sim._cbuild owns the flags).  Do not "simplify"
 * float expressions: a + b + c and a + (b + c) are different bits.
 *
 * LRU sets are arrays ordered oldest-first (index 0 evicts next), which
 * reproduces the reference's OrderedDict semantics; the directory maps
 * line -> 64-bit core bitmask (sharer iteration order never affects
 * observable state, so a bitmask replaces the reference's Python set);
 * FU pools use first-minimum scans exactly like the reference.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Route codes assigned by the Python precompute phase. */
#define R_BARRIER 0
#define R_LOAD_CACHE 1
#define R_LOAD_BYPASS 2
#define R_STORE_CACHE 3
#define R_STORE_BYPASS 4
#define R_ATOMIC_HOST 5
#define R_ATOMIC_PIM 6
#define R_ATOMIC_UPEI 7
#define R_ATOMIC_HOST_CAND 8

/* Return codes. */
#define SIM_OK 0
#define SIM_ERR_BARRIER_MISMATCH 1
#define SIM_ERR_STUCK_AT_BARRIER 2
#define SIM_ERR_NOMEM 3

/* ------------------------------------------------------------------ */
/* Open-addressing hash map: int64 line -> uint64 core bitmask.        */
/* Also used valueless as the dirty-line set.                          */
/* ------------------------------------------------------------------ */

#define H_EMPTY (-1)
#define H_TOMB (-2)

typedef struct {
    int64_t *keys;
    uint64_t *vals;
    size_t cap;   /* power of two */
    size_t used;  /* live + tombstones */
    size_t live;
} hmap;

static size_t h_slot(int64_t key, size_t cap) {
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    return (size_t)(h >> 32) & (cap - 1);
}

static int h_init(hmap *m, size_t cap) {
    m->cap = cap;
    m->used = 0;
    m->live = 0;
    m->keys = malloc(cap * sizeof(int64_t));
    m->vals = malloc(cap * sizeof(uint64_t));
    if (!m->keys || !m->vals) {
        free(m->keys);
        free(m->vals);
        m->keys = NULL;
        m->vals = NULL;
        return -1;
    }
    for (size_t i = 0; i < cap; i++) m->keys[i] = H_EMPTY;
    return 0;
}

static void h_free(hmap *m) {
    free(m->keys);
    free(m->vals);
    m->keys = NULL;
    m->vals = NULL;
}

/* Find the slot holding `key`, or (size_t)-1. */
static size_t h_find(const hmap *m, int64_t key) {
    size_t i = h_slot(key, m->cap);
    for (;;) {
        int64_t k = m->keys[i];
        if (k == key) return i;
        if (k == H_EMPTY) return (size_t)-1;
        i = (i + 1) & (m->cap - 1);
    }
}

static int h_grow(hmap *m) {
    hmap next;
    if (h_init(&next, m->cap * 2) != 0) return -1;
    for (size_t i = 0; i < m->cap; i++) {
        int64_t k = m->keys[i];
        if (k >= 0) {
            size_t j = h_slot(k, next.cap);
            while (next.keys[j] != H_EMPTY) j = (j + 1) & (next.cap - 1);
            next.keys[j] = k;
            next.vals[j] = m->vals[i];
            next.used++;
            next.live++;
        }
    }
    h_free(m);
    *m = next;
    return 0;
}

/* Slot for inserting/updating `key` (existing slot reused).  Returns
 * (size_t)-1 on allocation failure.  The caller sets vals[slot]. */
static size_t h_put_slot(hmap *m, int64_t key) {
    if ((m->used + 1) * 2 > m->cap) {
        if (h_grow(m) != 0) return (size_t)-1;
    }
    size_t i = h_slot(key, m->cap);
    size_t tomb = (size_t)-1;
    for (;;) {
        int64_t k = m->keys[i];
        if (k == key) return i;
        if (k == H_EMPTY) {
            if (tomb != (size_t)-1) {
                i = tomb;
            } else {
                m->used++;
            }
            m->keys[i] = key;
            m->vals[i] = 0;
            m->live++;
            return i;
        }
        if (k == H_TOMB && tomb == (size_t)-1) tomb = i;
        i = (i + 1) & (m->cap - 1);
    }
}

static void h_del_slot(hmap *m, size_t slot) {
    m->keys[slot] = H_TOMB;
    m->live--;
}

/* ------------------------------------------------------------------ */
/* LRU cache sets: per-set line arrays ordered oldest-first.           */
/* Mirrors _SetAssocCache built on OrderedDict.                        */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *lines; /* [num_sets][ways], oldest at index 0 */
    int32_t *count; /* [num_sets] */
    int64_t ways;
} lruset;

static int lru_init(lruset *c, int64_t num_sets, int64_t ways) {
    c->ways = ways;
    c->lines = malloc((size_t)num_sets * (size_t)ways * sizeof(int64_t));
    c->count = calloc((size_t)num_sets, sizeof(int32_t));
    if (!c->lines || !c->count) {
        free(c->lines);
        free(c->count);
        c->lines = NULL;
        c->count = NULL;
        return -1;
    }
    return 0;
}

static void lru_free(lruset *c) {
    free(c->lines);
    free(c->count);
    c->lines = NULL;
    c->count = NULL;
}

/* lookup-and-touch: OrderedDict `in` + move_to_end.  1 on hit. */
static int lru_lookup(lruset *c, int64_t set, int64_t line) {
    int64_t *s = c->lines + set * c->ways;
    int32_t n = c->count[set];
    for (int32_t i = 0; i < n; i++) {
        if (s[i] == line) {
            for (int32_t j = i; j < n - 1; j++) s[j] = s[j + 1];
            s[n - 1] = line;
            return 1;
        }
    }
    return 0;
}

/* insert with LRU eviction; returns the victim line or -1. */
static int64_t lru_insert(lruset *c, int64_t set, int64_t line) {
    int64_t *s = c->lines + set * c->ways;
    int32_t n = c->count[set];
    for (int32_t i = 0; i < n; i++) {
        if (s[i] == line) {
            for (int32_t j = i; j < n - 1; j++) s[j] = s[j + 1];
            s[n - 1] = line;
            return -1;
        }
    }
    if (n >= c->ways) {
        int64_t victim = s[0];
        for (int32_t j = 0; j < n - 1; j++) s[j] = s[j + 1];
        s[n - 1] = line;
        return victim;
    }
    s[n] = line;
    c->count[set] = n + 1;
    return -1;
}

/* drop a line if present (no return value needed by callers). */
static void lru_invalidate(lruset *c, int64_t set, int64_t line) {
    int64_t *s = c->lines + set * c->ways;
    int32_t n = c->count[set];
    for (int32_t i = 0; i < n; i++) {
        if (s[i] == line) {
            for (int32_t j = i; j < n - 1; j++) s[j] = s[j + 1];
            c->count[set] = n - 1;
            return;
        }
    }
}

static int lru_contains(const lruset *c, int64_t set, int64_t line) {
    const int64_t *s = c->lines + set * c->ways;
    int32_t n = c->count[set];
    for (int32_t i = 0; i < n; i++) {
        if (s[i] == line) return 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Scheduler heap of (t, core) with Python tuple ordering.             */
/* ------------------------------------------------------------------ */

typedef struct {
    double *t;
    int64_t *c;
    int64_t n;
} sched;

static int sched_less(const sched *h, int64_t a, int64_t b) {
    if (h->t[a] < h->t[b]) return 1;
    if (h->t[a] > h->t[b]) return 0;
    return h->c[a] < h->c[b];
}

static void sched_push(sched *h, double t, int64_t c) {
    int64_t i = h->n++;
    h->t[i] = t;
    h->c[i] = c;
    while (i > 0) {
        int64_t parent = (i - 1) / 2;
        if (!sched_less(h, i, parent)) break;
        double tt = h->t[i]; h->t[i] = h->t[parent]; h->t[parent] = tt;
        int64_t tc = h->c[i]; h->c[i] = h->c[parent]; h->c[parent] = tc;
        i = parent;
    }
}

static void sched_pop(sched *h, double *t, int64_t *c) {
    *t = h->t[0];
    *c = h->c[0];
    h->n--;
    if (h->n == 0) return;
    h->t[0] = h->t[h->n];
    h->c[0] = h->c[h->n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = 2 * i + 2, m = i;
        if (l < h->n && sched_less(h, l, m)) m = l;
        if (r < h->n && sched_less(h, r, m)) m = r;
        if (m == i) break;
        double tt = h->t[i]; h->t[i] = h->t[m]; h->t[m] = tt;
        int64_t tc = h->c[i]; h->c[i] = h->c[m]; h->c[m] = tc;
        i = m;
    }
}

/* ------------------------------------------------------------------ */
/* Simulation state shared by the resource helpers.                    */
/* ------------------------------------------------------------------ */

typedef struct {
    /* geometry */
    int64_t T, mlp, n1sets, n2sets, n3sets;
    int64_t num_vaults, banks_per_vault, fus_per_vault, fp_pool, prefetch;
    /* timing constants (exact doubles handed over from Python) */
    double lat1, lat12, lat123, coh_pen, freeze, fp_extra, upei_op;
    double uc_posted, offload_issue, link_lat, vault_oh, tRCD, tCL, burst;
    double fu_op, fp_fu_op, occ_read, occ_write, occ_at_int, occ_at_fp;
    double rate, c1, c2, c5;
    /* cache state */
    lruset *l1; /* [T] */
    lruset *l2; /* [T] */
    lruset l3;
    hmap dir, dirty;
    int64_t l1_hits, l1_misses, l2_hits, l2_misses, l3_hits, l3_misses;
    int64_t invalidations, writebacks, prefetches;
    /* HMC state */
    double *bank_free; /* [num_vaults][banks_per_vault] */
    double *fu;        /* [num_vaults][fus_per_vault] */
    double *fp;        /* [num_vaults][fp_pool] */
    double req_backlog, req_anchor, req_wait;
    double resp_backlog, resp_anchor, resp_wait;
    double bank_wait;
    int64_t activates, dreads, dwrites, fu_int, fu_fp;
    int64_t req_counts[6], reqf_counts[6], respf_counts[6];
    int64_t tk_order[6], tk_len;
    /* writeback lines produced by the current full-miss access */
    int64_t wb[2];
    int wb_n;
} simstate;

/* READ_64; mirrors HmcDevice._read_once term for term. */
static double hmc_read(simstate *S, int64_t v, int64_t bk, double t) {
    if (S->req_counts[0] == 0) S->tk_order[S->tk_len++] = 0;
    S->req_counts[0] += 1;
    S->reqf_counts[0] += 1;
    S->respf_counts[0] += 5;
    if (t > S->req_anchor) {
        double b = S->req_backlog - (t - S->req_anchor) * S->rate;
        S->req_backlog = b > 0.0 ? b : 0.0;
        S->req_anchor = t;
    }
    double w = S->req_backlog / S->rate;
    S->req_wait += w;
    S->req_backlog += 1;
    double t_vault = t + w + S->c1 + S->link_lat + S->vault_oh;
    double *row = S->bank_free + v * S->banks_per_vault;
    double bf = row[bk];
    double start = t_vault > bf ? t_vault : bf;
    S->bank_wait += start - t_vault;
    row[bk] = start + S->occ_read;
    double data_ready = start + S->tRCD + S->tCL + S->burst;
    S->activates += 1;
    S->dreads += 1;
    double tr = data_ready + S->vault_oh;
    if (tr > S->resp_anchor) {
        double b = S->resp_backlog - (tr - S->resp_anchor) * S->rate;
        S->resp_backlog = b > 0.0 ? b : 0.0;
        S->resp_anchor = tr;
    }
    w = S->resp_backlog / S->rate;
    S->resp_wait += w;
    S->resp_backlog += 5;
    return tr + w + S->c5 + S->link_lat;
}

/* WRITE_64 (posted); mirrors HmcDevice.write. */
static void hmc_write(simstate *S, int64_t v, int64_t bk, double t) {
    if (S->req_counts[1] == 0) S->tk_order[S->tk_len++] = 1;
    S->req_counts[1] += 1;
    S->reqf_counts[1] += 5;
    S->respf_counts[1] += 1;
    if (t > S->req_anchor) {
        double b = S->req_backlog - (t - S->req_anchor) * S->rate;
        S->req_backlog = b > 0.0 ? b : 0.0;
        S->req_anchor = t;
    }
    double w = S->req_backlog / S->rate;
    S->req_wait += w;
    S->req_backlog += 5;
    double t_vault = t + w + S->c5 + S->link_lat + S->vault_oh;
    double *row = S->bank_free + v * S->banks_per_vault;
    double bf = row[bk];
    double start = t_vault > bf ? t_vault : bf;
    S->bank_wait += start - t_vault;
    row[bk] = start + S->occ_write;
    double done = start + S->occ_write;
    S->activates += 1;
    S->dwrites += 1;
    double tr = done + S->vault_oh;
    if (tr > S->resp_anchor) {
        double b = S->resp_backlog - (tr - S->resp_anchor) * S->rate;
        S->resp_backlog = b > 0.0 ? b : 0.0;
        S->resp_anchor = tr;
    }
    w = S->resp_backlog / S->rate;
    S->resp_wait += w;
    S->resp_backlog += 1;
}

/* PIM-Atomic; mirrors HmcDevice._pim_atomic_once. */
static double pim_atomic(simstate *S, int64_t k, int64_t rf, int64_t isfp,
                         int64_t v, int64_t bk, double t) {
    if (S->req_counts[k] == 0) S->tk_order[S->tk_len++] = k;
    S->req_counts[k] += 1;
    S->reqf_counts[k] += 2;
    S->respf_counts[k] += rf;
    if (t > S->req_anchor) {
        double b = S->req_backlog - (t - S->req_anchor) * S->rate;
        S->req_backlog = b > 0.0 ? b : 0.0;
        S->req_anchor = t;
    }
    double w = S->req_backlog / S->rate;
    S->req_wait += w;
    S->req_backlog += 2;
    double t_vault = t + w + S->c2 + S->link_lat + S->vault_oh;
    double *row = S->bank_free + v * S->banks_per_vault;
    double bf = row[bk];
    double start = t_vault > bf ? t_vault : bf;
    S->bank_wait += start - t_vault;
    double data_at_fu = start + S->tRCD + S->tCL;
    double *pool;
    int64_t pool_n;
    double fut;
    if (isfp) {
        row[bk] = start + S->occ_at_fp;
        pool = S->fp + v * S->fp_pool;
        pool_n = S->fp_pool;
        fut = S->fp_fu_op;
        S->fu_fp += 1;
    } else {
        row[bk] = start + S->occ_at_int;
        pool = S->fu + v * S->fus_per_vault;
        pool_n = S->fus_per_vault;
        fut = S->fu_op;
        S->fu_int += 1;
    }
    /* first-minimum scan, like the reference's _reserve_fu */
    int64_t mi = 0;
    for (int64_t i = 1; i < pool_n; i++) {
        if (pool[i] < pool[mi]) mi = i;
    }
    double m = pool[mi];
    double fu_start = data_at_fu > m ? data_at_fu : m;
    pool[mi] = fu_start + fut;
    double result_ready = fu_start + fut;
    S->activates += 1;
    S->dreads += 1;
    S->dwrites += 1;
    double tr = result_ready + S->vault_oh;
    if (tr > S->resp_anchor) {
        double b = S->resp_backlog - (tr - S->resp_anchor) * S->rate;
        S->resp_backlog = b > 0.0 ? b : 0.0;
        S->resp_anchor = tr;
    }
    w = S->resp_backlog / S->rate;
    S->resp_wait += w;
    S->resp_backlog += rf;
    return tr + w + (rf == 1 ? S->c1 : S->c2) + S->link_lat;
}

/* ------------------------------------------------------------------ */
/* Cache hierarchy; mirrors CacheHierarchy and the directory logic.    */
/* ------------------------------------------------------------------ */

static void drop_private(simstate *S, int64_t core, int64_t ln) {
    if (lru_contains(&S->l1[core], ln % S->n1sets, ln)) return;
    if (lru_contains(&S->l2[core], ln % S->n2sets, ln)) return;
    size_t slot = h_find(&S->dir, ln);
    if (slot != (size_t)-1) {
        uint64_t mask = S->dir.vals[slot] & ~(1ULL << core);
        if (mask == 0) {
            h_del_slot(&S->dir, slot);
        } else {
            S->dir.vals[slot] = mask;
        }
    }
}

static void fill_l3(simstate *S, int64_t ln, int64_t s3) {
    int64_t victim = lru_insert(&S->l3, s3, ln);
    if (victim < 0) return;
    size_t slot = h_find(&S->dir, victim);
    if (slot != (size_t)-1) {
        uint64_t mask = S->dir.vals[slot];
        h_del_slot(&S->dir, slot);
        while (mask) {
            int owner = __builtin_ctzll(mask);
            mask &= mask - 1;
            lru_invalidate(&S->l1[owner], victim % S->n1sets, victim);
            lru_invalidate(&S->l2[owner], victim % S->n2sets, victim);
            S->invalidations += 1;
        }
    }
    slot = h_find(&S->dirty, victim);
    if (slot != (size_t)-1) {
        h_del_slot(&S->dirty, slot);
        S->writebacks += 1;
        S->wb[S->wb_n++] = victim;
    }
}

static void fill_l2(simstate *S, int64_t core, int64_t ln, int64_t s2) {
    int64_t victim = lru_insert(&S->l2[core], s2, ln);
    if (victim < 0) return;
    lru_invalidate(&S->l1[core], victim % S->n1sets, victim);
    drop_private(S, core, victim);
}

static void fill_l1(simstate *S, int64_t core, int64_t ln, int64_t s1) {
    int64_t victim = lru_insert(&S->l1[core], s1, ln);
    if (victim < 0) return;
    drop_private(S, core, victim);
}

/* CacheHierarchy.access inlined; returns hit level (0 = full miss),
 * -1 on allocation failure.  Writeback lines land in S->wb[0..wb_n). */
static int access_cache(simstate *S, int64_t core, int64_t ln,
                        int64_t s1, int64_t s2, int64_t s3,
                        int is_write, double *latency_out, int *coh_out) {
    int level;
    double latency;
    if (lru_lookup(&S->l1[core], s1, ln)) {
        S->l1_hits += 1;
        level = 1;
        latency = S->lat1;
    } else {
        S->l1_misses += 1;
        if (lru_lookup(&S->l2[core], s2, ln)) {
            S->l2_hits += 1;
            level = 2;
            latency = S->lat12;
            fill_l1(S, core, ln, s1);
        } else {
            S->l2_misses += 1;
            latency = S->lat123;
            if (lru_lookup(&S->l3, s3, ln)) {
                S->l3_hits += 1;
                level = 3;
            } else {
                S->l3_misses += 1;
                level = 0;
                S->wb_n = 0;
                fill_l3(S, ln, s3);
                if (S->prefetch &&
                    !lru_contains(&S->l3, (ln + 1) % S->n3sets, ln + 1)) {
                    fill_l3(S, ln + 1, (ln + 1) % S->n3sets);
                    S->prefetches += 1;
                }
            }
            fill_l2(S, core, ln, s2);
            fill_l1(S, core, ln, s1);
            size_t slot = h_put_slot(&S->dir, ln);
            if (slot == (size_t)-1) return -1;
            S->dir.vals[slot] |= 1ULL << core;
        }
    }
    int coh = 0;
    if (is_write) {
        size_t slot = h_find(&S->dir, ln);
        if (slot != (size_t)-1) {
            uint64_t mask = S->dir.vals[slot];
            uint64_t others = mask & ~(1ULL << core);
            uint64_t rest = others;
            while (rest) {
                int other = __builtin_ctzll(rest);
                rest &= rest - 1;
                lru_invalidate(&S->l1[other], s1, ln);
                lru_invalidate(&S->l2[other], s2, ln);
                S->invalidations += 1;
            }
            S->dir.vals[slot] = mask & ~others;
            coh = others != 0;
        }
        size_t dslot = h_put_slot(&S->dirty, ln);
        if (dslot == (size_t)-1) return -1;
    }
    if (level == 1 || level == 2) {
        size_t slot = h_put_slot(&S->dir, ln);
        if (slot == (size_t)-1) return -1;
        S->dir.vals[slot] |= 1ULL << core;
    }
    *latency_out = latency;
    *coh_out = coh;
    return level;
}

/* Bounded-MLP window push; argument evaluated from the pre-stall clock
 * by the caller, exactly like Core._window_push. Returns the new t. */
static double win_push(double *win_c, int64_t *wn_p, int64_t mlp,
                       double completion, double t, double *stall_c) {
    int64_t n = *wn_p;
    if (n >= mlp) {
        int64_t mi = 0;
        for (int64_t i = 1; i < n; i++) {
            if (win_c[i] < win_c[mi]) mi = i;
        }
        double earliest = win_c[mi];
        win_c[mi] = win_c[n - 1];
        n--;
        if (earliest > t) {
            *stall_c = *stall_c + (earliest - t);
            t = earliest;
        }
    }
    win_c[n] = completion;
    *wn_p = n + 1;
    return t;
}

/* ------------------------------------------------------------------ */
/* Entry point.                                                        */
/* ------------------------------------------------------------------ */

int graphpim_simulate(
    int64_t n_events, int64_t T,
    const int64_t *route, const int64_t *line,
    const int64_t *s1a, const int64_t *s2a, const int64_t *s3a,
    const int64_t *vaulta, const int64_t *banka,
    const int64_t *tka, const int64_t *respfa, const int64_t *isfpa,
    const int64_t *bida, const int64_t *ninstra,
    const double *issuea,
    const int64_t *starts,
    const int64_t *cfg_i, const double *cfg_d,
    double *core_d, int64_t *core_i,
    int64_t *out_i, double *out_d, int64_t *tkbuf) {
    (void)n_events;
    simstate S;
    memset(&S, 0, sizeof S);
    S.T = T;
    S.mlp = cfg_i[0];
    int64_t l1_ways = cfg_i[1], l2_ways = cfg_i[2], l3_ways = cfg_i[3];
    S.n1sets = cfg_i[4];
    S.n2sets = cfg_i[5];
    S.n3sets = cfg_i[6];
    S.num_vaults = cfg_i[7];
    S.banks_per_vault = cfg_i[8];
    S.fus_per_vault = cfg_i[9];
    S.fp_pool = cfg_i[10];
    S.prefetch = cfg_i[11];
    S.lat1 = cfg_d[0];
    S.lat12 = cfg_d[1];
    S.lat123 = cfg_d[2];
    S.coh_pen = cfg_d[3];
    S.freeze = cfg_d[4];
    S.fp_extra = cfg_d[5];
    S.upei_op = cfg_d[6];
    S.uc_posted = cfg_d[7];
    S.offload_issue = cfg_d[8];
    S.link_lat = cfg_d[9];
    S.vault_oh = cfg_d[10];
    S.tRCD = cfg_d[11];
    S.tCL = cfg_d[12];
    S.burst = cfg_d[13];
    S.fu_op = cfg_d[14];
    S.fp_fu_op = cfg_d[15];
    S.occ_read = cfg_d[16];
    S.occ_write = cfg_d[17];
    S.occ_at_int = cfg_d[18];
    S.occ_at_fp = cfg_d[19];
    S.rate = cfg_d[20];
    S.c1 = cfg_d[21];
    S.c2 = cfg_d[22];
    S.c5 = cfg_d[23];

    int rc = SIM_ERR_NOMEM;
    sched heap = {NULL, NULL, 0};
    double *win = NULL;
    int64_t *wn = NULL, *pos = NULL, *at_barrier = NULL;

    S.l1 = calloc((size_t)T, sizeof(lruset));
    S.l2 = calloc((size_t)T, sizeof(lruset));
    if (!S.l1 || !S.l2) goto done;
    for (int64_t i = 0; i < T; i++) {
        if (lru_init(&S.l1[i], S.n1sets, l1_ways) != 0) goto done;
        if (lru_init(&S.l2[i], S.n2sets, l2_ways) != 0) goto done;
    }
    if (lru_init(&S.l3, S.n3sets, l3_ways) != 0) goto done;
    if (h_init(&S.dir, 1024) != 0) goto done;
    if (h_init(&S.dirty, 1024) != 0) goto done;
    S.bank_free =
        calloc((size_t)(S.num_vaults * S.banks_per_vault), sizeof(double));
    S.fu = calloc((size_t)(S.num_vaults * S.fus_per_vault), sizeof(double));
    S.fp = calloc((size_t)(S.num_vaults * S.fp_pool), sizeof(double));
    heap.t = malloc((size_t)T * sizeof(double));
    heap.c = malloc((size_t)T * sizeof(int64_t));
    win = malloc((size_t)(T * S.mlp) * sizeof(double));
    wn = calloc((size_t)T, sizeof(int64_t));
    pos = malloc((size_t)T * sizeof(int64_t));
    at_barrier = malloc((size_t)T * sizeof(int64_t));
    if (!S.bank_free || !S.fu || !S.fp || !heap.t || !heap.c || !win ||
        !wn || !pos || !at_barrier)
        goto done;

    double *t_core = core_d;
    double *issue_acc = core_d + T;
    double *stall_acc = core_d + 2 * T;
    double *incore_acc = core_d + 3 * T;
    double *incache_acc = core_d + 4 * T;
    int64_t *instr_acc = core_i;
    int64_t *host_acc = core_i + T;
    int64_t *offl_acc = core_i + 2 * T;
    int64_t *upei_acc = core_i + 3 * T;
    int64_t *cand_tot = core_i + 4 * T;
    int64_t *cand_miss = core_i + 5 * T;
    int64_t *cand_l1 = core_i + 6 * T;
    int64_t *cand_l2 = core_i + 7 * T;
    int64_t *cand_l3 = core_i + 8 * T;

    for (int64_t i = 0; i < T; i++) {
        pos[i] = starts[i];
        heap.t[i] = 0.0;
        heap.c[i] = i;
    }
    heap.n = T; /* (0.0, 0..T-1) is already a valid min-heap */

    int64_t n_at = 0, done_count = 0, barrier_id = 0;
    int has_barrier = 0;

    while (heap.n) {
        double popped_t;
        int64_t cid;
        sched_pop(&heap, &popped_t, &cid);
        (void)popped_t;
        int64_t p = pos[cid];
        if (p >= starts[cid + 1]) {
            done_count += 1;
            continue;
        }
        pos[cid] = p + 1;
        int64_t r = route[p];
        double t = t_core[cid];
        double iss = issuea[p];
        instr_acc[cid] += ninstra[p];
        t = t + iss;
        issue_acc[cid] = issue_acc[cid] + iss;

        if (r == R_BARRIER) {
            int64_t bid = bida[p];
            if (!has_barrier) {
                has_barrier = 1;
                barrier_id = bid;
            } else if (bid != barrier_id) {
                out_i[14] = cid;
                out_i[15] = bid;
                out_i[16] = barrier_id;
                rc = SIM_ERR_BARRIER_MISMATCH;
                goto done;
            }
            t_core[cid] = t;
            at_barrier[n_at++] = cid;
            if (n_at + done_count == T) {
                double release = t_core[at_barrier[0]];
                for (int64_t i = 0; i < n_at; i++) {
                    double tc = t_core[at_barrier[i]];
                    if (tc > release) release = tc;
                }
                for (int64_t i = 0; i < n_at; i++) {
                    int64_t c = at_barrier[i];
                    stall_acc[c] = stall_acc[c] + (release - t_core[c]);
                    t_core[c] = release;
                    sched_push(&heap, release, c);
                }
                n_at = 0;
                has_barrier = 0;
            }
            continue;
        }

        if (r == R_LOAD_CACHE) {
            double latency;
            int coh;
            int level = access_cache(&S, cid, line[p], s1a[p], s2a[p],
                                     s3a[p], 0, &latency, &coh);
            if (level < 0) goto done;
            if (level == 0) {
                double t_mem = t + latency;
                double completion =
                    hmc_read(&S, vaulta[p], banka[p], t_mem);
                for (int i = 0; i < S.wb_n; i++) {
                    int64_t v = S.wb[i];
                    hmc_write(&S, v % S.num_vaults,
                              (v >> 5) % S.banks_per_vault, t_mem);
                }
                t = win_push(win + cid * S.mlp, &wn[cid], S.mlp,
                             completion, t, &stall_acc[cid]);
            } else if (level >= 2) {
                /* completion computed from the pre-stall clock, like
                 * _window_push's argument evaluation */
                double completion = t + latency;
                t = win_push(win + cid * S.mlp, &wn[cid], S.mlp,
                             completion, t, &stall_acc[cid]);
            }
        } else if (r == R_STORE_CACHE) {
            double latency;
            int coh;
            int level = access_cache(&S, cid, line[p], s1a[p], s2a[p],
                                     s3a[p], 1, &latency, &coh);
            if (level < 0) goto done;
            if (level == 0) {
                double t_mem = t + latency;
                double completion =
                    hmc_read(&S, vaulta[p], banka[p], t_mem);
                for (int i = 0; i < S.wb_n; i++) {
                    int64_t v = S.wb[i];
                    hmc_write(&S, v % S.num_vaults,
                              (v >> 5) % S.banks_per_vault, t_mem);
                }
                t = win_push(win + cid * S.mlp, &wn[cid], S.mlp,
                             completion, t, &stall_acc[cid]);
            }
        } else if (r == R_LOAD_BYPASS) {
            double completion = hmc_read(&S, vaulta[p], banka[p], t);
            t = win_push(win + cid * S.mlp, &wn[cid], S.mlp, completion,
                         t, &stall_acc[cid]);
        } else if (r == R_STORE_BYPASS) {
            hmc_write(&S, vaulta[p], banka[p], t);
            t = t + S.uc_posted;
            stall_acc[cid] += S.uc_posted;
        } else if (r == R_ATOMIC_PIM) {
            double completion = pim_atomic(&S, tka[p], respfa[p], isfpa[p],
                                           vaulta[p], banka[p], t);
            offl_acc[cid] += 1;
            if (completion > t) {
                stall_acc[cid] += completion - t;
                t = completion;
            }
            t = t + S.offload_issue;
            stall_acc[cid] += S.offload_issue;
        } else if (r == R_ATOMIC_UPEI) {
            int64_t ln = line[p], ss1 = s1a[p], ss2 = s2a[p], ss3 = s3a[p];
            int probe = lru_contains(&S.l1[cid], ss1, ln) ||
                        lru_contains(&S.l2[cid], ss2, ln) ||
                        lru_contains(&S.l3, ss3, ln);
            double latency;
            int coh;
            if (probe) {
                int level = access_cache(&S, cid, ln, ss1, ss2, ss3, 1,
                                         &latency, &coh);
                if (level < 0) goto done;
                t = t + (latency + S.upei_op);
                upei_acc[cid] += 1;
                incache_acc[cid] += latency + S.upei_op;
            } else {
                t = t + S.lat123; /* walk latency */
                incache_acc[cid] += S.lat123;
                double completion = pim_atomic(&S, tka[p], respfa[p],
                                               isfpa[p], vaulta[p],
                                               banka[p], t);
                /* line installed alongside the offload; writebacks are
                 * discarded under the idealization */
                int level = access_cache(&S, cid, ln, ss1, ss2, ss3, 1,
                                         &latency, &coh);
                if (level < 0) goto done;
                offl_acc[cid] += 1;
                if (completion > t) {
                    stall_acc[cid] += completion - t;
                    t = completion;
                }
                t = t + S.offload_issue;
                stall_acc[cid] += S.offload_issue;
            }
        } else { /* R_ATOMIC_HOST / R_ATOMIC_HOST_CAND */
            double *win_c = win + cid * S.mlp;
            int64_t n = wn[cid];
            double drain_wait;
            if (n) {
                double latest = t;
                for (int64_t i = 0; i < n; i++) {
                    if (win_c[i] > latest) latest = win_c[i];
                }
                drain_wait = latest - t;
                t = latest;
                wn[cid] = 0;
            } else {
                drain_wait = 0.0;
            }
            double latency;
            int coh;
            int level = access_cache(&S, cid, line[p], s1a[p], s2a[p],
                                     s3a[p], 1, &latency, &coh);
            if (level < 0) goto done;
            if (r == R_ATOMIC_HOST_CAND) {
                cand_tot[cid] += 1;
                if (level == 0) cand_miss[cid] += 1;
                else if (level == 1) cand_l1[cid] += 1;
                else if (level == 2) cand_l2[cid] += 1;
                else cand_l3[cid] += 1;
            }
            double mem_latency = 0.0;
            if (level == 0) {
                double t_mem = t + latency;
                double completion =
                    hmc_read(&S, vaulta[p], banka[p], t_mem);
                for (int i = 0; i < S.wb_n; i++) {
                    int64_t v = S.wb[i];
                    hmc_write(&S, v % S.num_vaults,
                              (v >> 5) % S.banks_per_vault, t_mem);
                }
                mem_latency = completion - t_mem;
            }
            double coherence = coh ? S.coh_pen : 0.0;
            double fpx = isfpa[p] ? S.fp_extra : 0.0;
            incore_acc[cid] +=
                drain_wait + S.freeze + mem_latency + fpx;
            incache_acc[cid] += latency + coherence;
            t = t + (S.freeze + mem_latency + fpx + latency + coherence);
            host_acc[cid] += 1;
        }

        t_core[cid] = t;
        sched_push(&heap, t, cid);
    }

    if (n_at) {
        out_i[15] = barrier_id;
        out_i[17] = n_at;
        rc = SIM_ERR_STUCK_AT_BARRIER;
        goto done;
    }
    rc = SIM_OK;

    out_i[0] = S.l1_hits;
    out_i[1] = S.l1_misses;
    out_i[2] = S.l2_hits;
    out_i[3] = S.l2_misses;
    out_i[4] = S.l3_hits;
    out_i[5] = S.l3_misses;
    out_i[6] = S.invalidations;
    out_i[7] = S.writebacks;
    out_i[8] = S.prefetches;
    out_i[9] = S.activates;
    out_i[10] = S.dreads;
    out_i[11] = S.dwrites;
    out_i[12] = S.fu_int;
    out_i[13] = S.fu_fp;
    out_d[0] = S.bank_wait;
    out_d[1] = S.req_wait;
    out_d[2] = S.resp_wait;
    for (int i = 0; i < 6; i++) {
        tkbuf[i] = S.req_counts[i];
        tkbuf[6 + i] = S.reqf_counts[i];
        tkbuf[12 + i] = S.respf_counts[i];
        tkbuf[18 + i] = S.tk_order[i];
    }
    tkbuf[24] = S.tk_len;

done:
    if (S.l1) {
        for (int64_t i = 0; i < T; i++) lru_free(&S.l1[i]);
        free(S.l1);
    }
    if (S.l2) {
        for (int64_t i = 0; i < T; i++) lru_free(&S.l2[i]);
        free(S.l2);
    }
    lru_free(&S.l3);
    h_free(&S.dir);
    h_free(&S.dirty);
    free(S.bank_free);
    free(S.fu);
    free(S.fp);
    free(heap.t);
    free(heap.c);
    free(win);
    free(wn);
    free(pos);
    free(at_barrier);
    return rc;
}
