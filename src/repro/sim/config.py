"""System configuration: the three evaluated machines of Section IV.

- ``Mode.BASELINE`` — conventional host: every access goes through the
  cache hierarchy; atomics execute in-core with pipeline freeze,
  write-buffer drain, cache checking, and coherence traffic.
- ``Mode.UPEI`` — idealized PEI: property atomics execute host-side at
  the cache level when the line is resident (zero-overhead coherence),
  otherwise offload to the HMC after the cache check.
- ``Mode.GRAPHPIM`` — the paper's design: PMR accesses bypass the cache
  hierarchy; PMR atomics offload to HMC as PIM-Atomic commands.

Cache geometry defaults are the paper's Table IV scaled down ~500x in
capacity to match the laptop-scale graphs (the paper simulates 1M-vertex
graphs against a 16 MB L3; we simulate 1k-64k-vertex graphs, so the
footprint:L3 ratio — the quantity that determines miss behavior — is
preserved).  Latencies are unscaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.common.errors import ConfigError
from repro.common.units import KB
from repro.dram.device import DdrConfig
from repro.faults.plan import FaultPlan
from repro.hmc.config import HmcConfig
from repro.sim.cache import CacheConfig


class Mode(Enum):
    """Evaluated system configurations (Section IV-B)."""

    BASELINE = "baseline"
    UPEI = "upei"
    GRAPHPIM = "graphpim"


#: Table IV cache latencies (cycles at 2 GHz), capacity scaled so that
#: the property-footprint:LLC ratio of the default bench graphs matches
#: the paper's >80% candidate miss regime.
DEFAULT_L1 = CacheConfig(size_bytes=2 * KB, ways=4, latency=4.0)
DEFAULT_L2 = CacheConfig(size_bytes=8 * KB, ways=8, latency=12.0)
DEFAULT_L3 = CacheConfig(size_bytes=32 * KB, ways=16, latency=36.0)


@dataclass(frozen=True)
class SystemConfig:
    """Everything the timing simulation needs to know."""

    mode: Mode = Mode.BASELINE
    num_cores: int = 16
    issue_width: int = 4
    #: Maximum overlappable outstanding memory operations per core.
    #: Irregular pointer-dependent graph loops achieve far less memory
    #: level parallelism than the line-fill-buffer count; this is the
    #: *effective* MLP and the main IPC calibration knob (Figure 1).
    mlp: int = 4
    #: Whether the proposed FP-add/sub PIM extension is available.
    fp_extension: bool = True
    #: GraphPIM's cache policy (Section III-B): PMR accesses bypass the
    #: cache hierarchy.  Setting this False is the ablation where plain
    #: PMR loads/stores are cached (atomics still offload; coherence is
    #: idealized as free, which only flatters the ablated design).
    pmr_bypass: bool = True
    l1: CacheConfig = DEFAULT_L1
    l2: CacheConfig = DEFAULT_L2
    l3: CacheConfig = DEFAULT_L3
    hmc: HmcConfig = field(default_factory=HmcConfig)
    #: Hybrid-memory extension (Section III-B): when set, metadata and
    #: structure live in conventional DDR and only
    #: ``property_hmc_fraction`` of the property lines are HMC-resident
    #: (and thus offloadable/bypassable).  None = pure-HMC main memory.
    dram: DdrConfig | None = None
    property_hmc_fraction: float = 1.0
    #: Optional next-line prefetcher at the LLC (Section II-C argues it
    #: cannot help irregular property access — the ablation verifies).
    prefetch_next_line: bool = False
    #: Optional deterministic fault-injection plan for the HMC device
    #: (link bit errors, dropped responses, vault stall windows).  None
    #: means a fault-free memory system.  Part of the config
    #: fingerprint, so cached results are segregated per plan.
    faults: FaultPlan | None = None
    #: Fixed in-core cost of a host atomic: pipeline freeze and
    #: write-buffer drain beyond the dynamic drain wait (Section II-D).
    atomic_freeze_cycles: float = 40.0
    #: Extra host cycles for a floating-point CAS-loop atomic (load,
    #: FP convert/add, cmpxchg, retry on contention).
    fp_atomic_extra_cycles: float = 56.0
    #: Host-side PEI computation cost when a U-PEI candidate hits.
    upei_host_op_cycles: float = 2.0
    #: Issue cost of a *posted* (no-return) offloaded request.  PMR
    #: accesses are uncacheable, and x86 UC requests are strongly
    #: ordered: the core waits until the request is accepted by the
    #: memory system before issuing the next one.
    uc_posted_issue_cycles: float = 24.0
    #: Core-side cost of dispatching any offloaded atomic (POU routing,
    #: request-packet formation, strongly-ordered issue, and response
    #: handling), charged on top of the HMC round trip in both the
    #: GraphPIM and U-PEI offload paths.
    offload_issue_cycles: float = 48.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if self.mlp < 1:
            raise ConfigError("mlp must be >= 1")
        if not 0.0 <= self.property_hmc_fraction <= 1.0:
            raise ConfigError("property_hmc_fraction must be in [0, 1]")

    @property
    def display_name(self) -> str:
        return self.label or self.mode.value

    # ------------------------------------------------------------------
    # Serialization (result cache, worker IPC, `repro run --json`)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe mapping that round-trips via :meth:`from_dict`."""
        return {
            "mode": self.mode.value,
            "num_cores": self.num_cores,
            "issue_width": self.issue_width,
            "mlp": self.mlp,
            "fp_extension": self.fp_extension,
            "pmr_bypass": self.pmr_bypass,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "l3": self.l3.to_dict(),
            "hmc": self.hmc.to_dict(),
            "dram": self.dram.to_dict() if self.dram is not None else None,
            "property_hmc_fraction": self.property_hmc_fraction,
            "prefetch_next_line": self.prefetch_next_line,
            "faults": (
                self.faults.to_dict() if self.faults is not None else None
            ),
            "atomic_freeze_cycles": self.atomic_freeze_cycles,
            "fp_atomic_extra_cycles": self.fp_atomic_extra_cycles,
            "upei_host_op_cycles": self.upei_host_op_cycles,
            "uc_posted_issue_cycles": self.uc_posted_issue_cycles,
            "offload_issue_cycles": self.offload_issue_cycles,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        from repro.dram.device import DdrConfig

        kwargs = dict(data)
        kwargs["mode"] = Mode(kwargs["mode"])
        kwargs["l1"] = CacheConfig.from_dict(kwargs["l1"])
        kwargs["l2"] = CacheConfig.from_dict(kwargs["l2"])
        kwargs["l3"] = CacheConfig.from_dict(kwargs["l3"])
        kwargs["hmc"] = HmcConfig.from_dict(kwargs["hmc"])
        if kwargs["dram"] is not None:
            kwargs["dram"] = DdrConfig.from_dict(kwargs["dram"])
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Preset constructors
    # ------------------------------------------------------------------

    @classmethod
    def baseline(cls, **overrides) -> "SystemConfig":
        """Conventional architecture with HMC as plain main memory."""
        return cls(mode=Mode.BASELINE, label="Baseline", **overrides)

    @classmethod
    def upei(cls, **overrides) -> "SystemConfig":
        """Idealized PEI (performance upper bound of [14])."""
        return cls(mode=Mode.UPEI, label="U-PEI", **overrides)

    @classmethod
    def graphpim(cls, fp_extension: bool = True, **overrides) -> "SystemConfig":
        """The paper's proposal."""
        return cls(
            mode=Mode.GRAPHPIM,
            fp_extension=fp_extension,
            label="GraphPIM",
            **overrides,
        )

    def with_hmc(self, hmc: HmcConfig) -> "SystemConfig":
        """Copy with a different HMC configuration (sweeps)."""
        return replace(self, hmc=hmc)

    def with_faults(self, faults: FaultPlan | None) -> "SystemConfig":
        """Copy with a fault-injection plan (None = fault-free)."""
        return replace(self, faults=faults)

    def evaluation_trio(self) -> "list[SystemConfig]":
        """Baseline / U-PEI / GraphPIM sharing this config's parameters."""
        return [
            replace(self, mode=Mode.BASELINE, label="Baseline"),
            replace(self, mode=Mode.UPEI, label="U-PEI"),
            replace(self, mode=Mode.GRAPHPIM, label="GraphPIM"),
        ]
