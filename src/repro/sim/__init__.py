"""Trace-driven timing simulation: caches, cores, system assembly.

Phase 2 of the reproduction pipeline: per-thread traces from
:mod:`repro.framework` are replayed through a bounded-window core model
over a three-level inclusive cache hierarchy and the HMC device, under
one of three system modes (baseline / U-PEI / GraphPIM).
"""

from repro.sim.cache import CacheConfig, CacheHierarchy, CacheLevelStats
from repro.sim.config import Mode, SystemConfig
from repro.sim.core import CoreStats
from repro.sim.system import SimResult, simulate

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevelStats",
    "CoreStats",
    "Mode",
    "SimResult",
    "SystemConfig",
    "simulate",
]
