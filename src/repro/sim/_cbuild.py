"""On-demand compilation and loading of the C batch kernel.

:mod:`repro.sim.vectorized` lowers the serial half of its two-phase
kernel to ``_kernel.c``.  This module owns the build: the source is
compiled once per content hash with the system C compiler and cached
under ``_cbuild/`` next to the package, then loaded through
:mod:`ctypes`.  Everything here is best-effort — any failure (no
compiler, broken toolchain, unwritable package directory) surfaces as a
``(None, reason)`` pair and the vectorized engine declines the input,
which the dispatcher turns into a per-input fallback to the reference
interpreter.  No environment is ever required to have a C compiler.

Flags are part of the bit-identity contract: ``-ffp-contract=off``
forbids fused multiply-adds and no fast-math flag may ever be added,
otherwise the kernel's doubles stop matching CPython's.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import threading
from pathlib import Path
from typing import Optional

_SRC = Path(__file__).with_name("_kernel.c")
_BUILD_DIR = Path(__file__).with_name("_cbuild")

#: Never add fast-math/reassociation flags; see the module docstring.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

#: Set to any non-empty value to skip the build and force the decline
#: path (useful to exercise fallback behavior without uninstalling gcc).
DISABLE_ENV = "REPRO_NO_CKERNEL"

_lock = threading.Lock()
_cached: Optional[tuple] = None


def load_kernel():
    """``(cdll, None)`` with the bound entry point, or ``(None, reason)``.

    The outcome (success or failure) is cached for the process; a
    missing compiler is diagnosed once, not per simulation.
    """
    global _cached
    if _cached is None:
        with _lock:
            if _cached is None:
                _cached = _load()
    return _cached


def _find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _load():
    if os.environ.get(DISABLE_ENV):
        return None, f"C kernel disabled via {DISABLE_ENV}"
    try:
        source = _SRC.read_bytes()
    except OSError as exc:
        return None, f"kernel source unavailable: {exc}"
    tag = hashlib.sha256(source).hexdigest()[:16]
    so_path = _BUILD_DIR / f"kernel-{tag}.so"
    if not so_path.exists():
        cc = _find_compiler()
        if cc is None:
            return None, "no C compiler (cc/gcc/clang) on PATH"
        try:
            _BUILD_DIR.mkdir(exist_ok=True)
            # Unique temp name + atomic rename: concurrent processes
            # may race to build the same kernel.
            tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp), str(_SRC)],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout).strip()
                return None, f"kernel build failed: {detail[:300]}"
            os.replace(tmp, so_path)
        except Exception as exc:  # noqa: BLE001 - any failure => decline
            return None, f"kernel build failed: {exc}"
    try:
        lib = ctypes.CDLL(str(so_path))
        _bind(lib)
    except (OSError, AttributeError) as exc:
        return None, f"kernel load failed: {exc}"
    return lib, None


def _bind(lib) -> None:
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64p = ctypes.POINTER(ctypes.c_double)
    fn = lib.graphpim_simulate
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int64,  # n_events
        ctypes.c_int64,  # T
        i64p,  # route
        i64p,  # line
        i64p,  # s1
        i64p,  # s2
        i64p,  # s3
        i64p,  # vault
        i64p,  # bank
        i64p,  # tk
        i64p,  # respf
        i64p,  # isfp
        i64p,  # bid
        i64p,  # ninstr
        f64p,  # issue
        i64p,  # starts
        i64p,  # cfg_i
        f64p,  # cfg_d
        f64p,  # core_d
        i64p,  # core_i
        i64p,  # out_i
        f64p,  # out_d
        i64p,  # tkbuf
    ]
