"""Address routing between the HMC and (optionally) a DDR channel pair.

In a pure-HMC system (the paper's Table IV machine) everything lives in
the cube.  In a hybrid system, metadata and structure live in DDR, and
the property region is split: a deterministic per-line hash places
``property_hmc_fraction`` of the property lines in the HMC, the rest in
DDR.  The POU can offload only atomics whose target line is
HMC-resident; DDR-resident property is "processed in the conventional
way" (Section III-B).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.dram.device import DdrDevice
from repro.hmc.commands import HmcCommand
from repro.hmc.device import HmcDevice
from repro.memlayout.regions import REGION_SHIFT, Region

_PROPERTY_REGION = int(Region.PROPERTY)


class MemorySystem:
    """Routes reads/writes/PIM-atomics to the HMC or the DDR device."""

    def __init__(
        self,
        hmc: HmcDevice,
        dram: DdrDevice | None = None,
        property_hmc_fraction: float = 1.0,
    ):
        if not 0.0 <= property_hmc_fraction <= 1.0:
            raise ConfigError("property_hmc_fraction must be in [0, 1]")
        self.hmc = hmc
        self.dram = dram
        # Per-line hash threshold out of 64 buckets.
        self._threshold = round(property_hmc_fraction * 64)
        self.property_hmc_fraction = property_hmc_fraction

    @property
    def is_hybrid(self) -> bool:
        return self.dram is not None

    def in_hmc(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is HMC-resident."""
        if self.dram is None:
            return True
        if (addr >> REGION_SHIFT) != _PROPERTY_REGION:
            # Hybrid systems keep metadata/structure in conventional
            # DRAM; only (part of) the property region is in the cube.
            return False
        line = addr >> 6
        # Deterministic spread: golden-ratio hash into 64 buckets.
        bucket = (line * 0x9E3779B97F4A7C15 >> 58) & 63
        return bucket < self._threshold

    def read(self, addr: int, t: float) -> float:
        if self.in_hmc(addr):
            return self.hmc.read(addr, t)
        return self.dram.read(addr, t)

    def write(self, addr: int, t: float) -> float:
        if self.in_hmc(addr):
            return self.hmc.write(addr, t)
        return self.dram.write(addr, t)

    def pim_atomic(
        self, command: HmcCommand, addr: int, t: float, host_consumes: bool
    ) -> tuple[float, bool]:
        """Execute a PIM atomic; caller must have checked :meth:`in_hmc`."""
        if not self.in_hmc(addr):
            raise ConfigError(
                f"PIM atomic routed to non-HMC address {addr:#x}"
            )
        return self.hmc.pim_atomic(command, addr, t, host_consumes)

    @property
    def stats(self):
        """The HMC-side stats (bandwidth/energy accounting)."""
        return self.hmc.stats

    @property
    def dram_stats(self):
        """The DDR-side stats, or None for pure-HMC systems."""
        return self.dram.stats if self.dram else None
