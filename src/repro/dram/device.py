"""A simple DDR4-like memory channel model.

Deliberately simpler than the HMC model: a handful of channels with
per-bank closed-page timing and an aggregate-bandwidth bus.  There are
no compute units — atomics to DDR-resident data always execute on the
host.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class DdrConfig:
    """DDR4-2400-ish channel parameters."""

    num_channels: int = 2
    banks_per_channel: int = 16
    #: Peak bus bandwidth per channel, bytes/second.
    channel_bandwidth_bytes: float = 19.2e9
    tCL_ns: float = 14.0
    tRCD_ns: float = 14.0
    tRP_ns: float = 14.0
    tRAS_ns: float = 32.0
    tWR_ns: float = 15.0
    burst_ns: float = 3.3
    #: Controller queue/scheduling overhead per request, ns.
    controller_overhead_ns: float = 10.0
    core_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.banks_per_channel < 1:
            raise ConfigError("DDR needs at least one channel and bank")

    def cycles(self, ns: float) -> float:
        return ns * self.core_ghz

    @property
    def bytes_per_cycle(self) -> float:
        return (
            self.num_channels
            * self.channel_bandwidth_bytes
            / (self.core_ghz * 1e9)
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DdrConfig":
        return cls(**data)


@dataclass
class DdrStats:
    """Access counters for the DDR side of a hybrid system."""

    reads: int = 0
    writes: int = 0
    bus_wait_cycles: float = 0.0
    bank_wait_cycles: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DdrStats":
        return cls(**data)

    def publish(self, registry) -> None:
        """Register the DDR-side counters on a metrics registry."""
        ops = registry.counter(
            "ddr_ops_total", help="DDR accesses by type"
        )
        ops.inc(self.reads, op="read")
        ops.inc(self.writes, op="write")
        waits = registry.counter(
            "ddr_wait_cycles_total", help="DDR queueing by resource"
        )
        waits.inc(self.bus_wait_cycles, resource="bus")
        waits.inc(self.bank_wait_cycles, resource="bank")


class DdrDevice:
    """Timing model for the conventional DRAM of a hybrid system."""

    def __init__(self, config: DdrConfig | None = None):
        self.config = config or DdrConfig()
        cfg = self.config
        self._bank_free = np.zeros(
            (cfg.num_channels, cfg.banks_per_channel), dtype=np.float64
        )
        # Token-bucket bus model (same rationale as the HMC link lanes).
        self._bus_backlog = 0.0
        self._bus_anchor = 0.0
        self.stats = DdrStats()

    def channel_of(self, addr: int) -> int:
        return (addr >> 6) % self.config.num_channels

    def bank_of(self, addr: int) -> int:
        return (addr >> 12) % self.config.banks_per_channel

    def _reserve_bus(self, t: float, line_bytes: int = 64) -> float:
        rate = self.config.bytes_per_cycle
        if t > self._bus_anchor:
            self._bus_backlog = max(
                0.0, self._bus_backlog - (t - self._bus_anchor) * rate
            )
            self._bus_anchor = t
        wait = self._bus_backlog / rate
        self.stats.bus_wait_cycles += wait
        self._bus_backlog += line_bytes
        return t + wait + line_bytes / rate

    def _reserve_bank(self, addr: int, t: float, occupancy: float) -> float:
        channel, bank = self.channel_of(addr), self.bank_of(addr)
        start = max(t, float(self._bank_free[channel, bank]))
        self.stats.bank_wait_cycles += start - t
        self._bank_free[channel, bank] = start + occupancy
        return start

    def read(self, addr: int, t: float) -> float:
        """64-byte line read; returns data-arrival time at the host."""
        cfg = self.config
        self.stats.reads += 1
        t_ctrl = t + cfg.cycles(cfg.controller_overhead_ns)
        t_bank = self._reserve_bank(
            addr, t_ctrl, cfg.cycles(cfg.tRAS_ns + cfg.tRP_ns)
        )
        data_ready = t_bank + cfg.cycles(
            cfg.tRCD_ns + cfg.tCL_ns + cfg.burst_ns
        )
        return self._reserve_bus(data_ready)

    def write(self, addr: int, t: float) -> float:
        """Posted 64-byte write; returns DRAM completion time."""
        cfg = self.config
        self.stats.writes += 1
        t_ctrl = t + cfg.cycles(cfg.controller_overhead_ns)
        self._reserve_bus(t_ctrl)
        occupancy = cfg.cycles(
            cfg.tRCD_ns + cfg.burst_ns + cfg.tWR_ns + cfg.tRP_ns
        )
        t_bank = self._reserve_bank(addr, t_ctrl, occupancy)
        return t_bank + occupancy
