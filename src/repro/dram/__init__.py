"""Conventional DDR memory model for hybrid HMC+DRAM systems.

Section III-B of the paper notes GraphPIM "can be applied on systems
equipped with both HMCs and DRAMs": property data resident in plain
DRAM is processed conventionally, while HMC-resident property still
benefits from PIM-Atomic.  This package provides the DDR channel model
and the routing layer that splits the address space between the two
devices.
"""

from repro.dram.device import DdrConfig, DdrDevice, DdrStats
from repro.dram.memory_system import MemorySystem

__all__ = ["DdrConfig", "DdrDevice", "DdrStats", "MemorySystem"]
