"""GraphBIG-equivalent graph workloads (Table III of the paper).

Thirteen workloads across the paper's three categories:

- **Graph Traversal (GT)**: BFS, DFS, Degree Centrality, Betweenness
  Centrality, Shortest Path, k-Core Decomposition, Connected Component,
  PageRank.
- **Dynamic Graph (DG)**: Graph Construction, Graph Update, Topology
  Morphing.
- **Rich Property (RP)**: Triangle Count, Gibbs Inference.

Each workload runs functionally on the framework in
:mod:`repro.framework` and records the memory trace the timing model
replays.  Functional outputs are returned so the test suite can verify
algorithmic correctness against reference implementations.
"""

from repro.workloads.base import Category, Workload, WorkloadRun
from repro.workloads.registry import (
    all_workloads,
    applicable_workloads,
    figure7_workloads,
    get_workload,
)

# Import workload modules for their registration side effects.
from repro.workloads import traversal as _traversal  # noqa: F401
from repro.workloads import centrality as _centrality  # noqa: F401
from repro.workloads import components as _components  # noqa: F401
from repro.workloads import ranking as _ranking  # noqa: F401
from repro.workloads import rich_property as _rich_property  # noqa: F401
from repro.workloads import dynamic as _dynamic  # noqa: F401

__all__ = [
    "Category",
    "Workload",
    "WorkloadRun",
    "all_workloads",
    "applicable_workloads",
    "figure7_workloads",
    "get_workload",
]
