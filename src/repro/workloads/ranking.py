"""PageRank with atomic floating-point scatter updates.

PageRank is the paper's showcase for the FP-add PIM extension: it gains
the largest speedup (2.4x) once its per-edge ``rank += share`` updates
can offload (Section III-C, Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.framework.context import FrameworkContext
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register


class PageRank(Workload):
    """Scatter-style PageRank (push model).

    Each iteration pushes ``damping * rank[u] / deg(u)`` to every
    neighbor with an atomic FP add, then swaps in the next-rank table.
    Dangling vertices redistribute uniformly (handled analytically in
    the swap phase so the memory trace matches the scatter kernel).
    """

    code = "PRank"
    name = "Page rank"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg (FP-add loop)"
    pim_op = AtomicOp.FP_ADD
    applicable = True
    needs_fp_extension = True
    missing_operation = "Floating point add"

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        iterations: int = 3,
        damping: float = 0.85,
    ) -> dict:
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        base = (1.0 - damping) / n
        rank = ctx.property_table("pr.rank", n, 1.0 / n, dtype=np.float64)
        next_rank = ctx.property_table("pr.next", n, base, dtype=np.float64)
        out_degrees = graph.out_degrees()
        vertices = list(range(n))

        dangling_mass = 0.0
        for _ in range(iterations):
            dangling_mass = 0.0

            def scatter(tid, trace, u):
                nonlocal dangling_mass
                trace.work(3)
                ru = rank.read(trace, u)
                deg = int(out_degrees[u])
                if deg == 0:
                    dangling_mass += damping * ru
                    return
                trace.work(6)  # divide + loop setup
                share = damping * ru / deg
                for v in tg.neighbors(trace, u):
                    next_rank.fp_add(trace, v, share)

            ctx.parallel_for(vertices, scatter)

            dangling_share = dangling_mass / n

            def swap(tid, trace, v):
                trace.work(4)
                r = next_rank.read(trace, v)
                rank.write(trace, v, r + dangling_share)
                next_rank.write(trace, v, base)

            ctx.parallel_for(vertices, swap)

        ranks = rank.values.copy()
        return {
            "rank": ranks,
            "iterations": iterations,
            "total_mass": float(ranks.sum()),
        }


PRANK = register(PageRank())
