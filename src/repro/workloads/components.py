"""Connected Components via atomic label propagation."""

from __future__ import annotations

import numpy as np

from repro.framework.context import FrameworkContext
from repro.framework.frontier import Frontier
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register


class ConnectedComponents(Workload):
    """Min-label propagation with ``lock cmpxchg`` claims.

    Components are computed on the symmetrized view of the input graph
    (weak connectivity).  Labels start as vertex ids; improving labels
    propagate along edges until a fixed point.
    """

    code = "CComp"
    name = "Connected component"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg"
    pim_op = AtomicOp.CAS
    applicable = True

    def execute(self, ctx: FrameworkContext, graph: CsrGraph) -> dict:
        undirected = graph.undirected()
        tg = ctx.register_graph(undirected)
        n = undirected.num_vertices
        label = ctx.property_table("cc.label", n, 0)

        def init(tid, trace, v):
            trace.work(1)
            label.write(trace, v, v)

        vertices = list(range(n))
        ctx.parallel_for(vertices, init)

        next_frontiers = [
            Frontier(ctx, f"cc.frontier.{tid}", n)
            for tid in range(ctx.num_threads)
        ]
        frontier = vertices
        rounds = 0
        # Every traversed edge attempts an atomic CAS-min on the
        # neighbor label (Section II-D: neighbor properties are accessed
        # via CAS); the old value returned by the cmpxchg tells the
        # thread whether its label won.
        while frontier:
            def propagate(tid, trace, u):
                trace.work(3)
                lu = label.read(trace, u)
                for v in tg.neighbors(trace, u):
                    if label.cas_improve_min(trace, v, lu):
                        next_frontiers[tid].push(trace, v)

            ctx.parallel_for(frontier, propagate)
            merged: list[int] = []
            for tid, nf in enumerate(next_frontiers):
                merged.extend(nf.drain(ctx.threads[tid]))
            frontier = list(dict.fromkeys(merged))
            rounds += 1

        labels = label.values.copy()
        num_components = int(np.unique(labels).size)
        return {
            "label": labels,
            "num_components": num_components,
            "rounds": rounds,
        }


CCOMP = register(ConnectedComponents())
