"""Centrality workloads: Degree Centrality and Betweenness Centrality.

Degree Centrality is the paper's highest-atomic-density workload (one
``lock add`` per edge, 64% atomic overhead in Figure 4).  Betweenness
Centrality needs the floating-point-add PIM extension and is
compute-heavy on thread-local data, which is why it benefits least
(Figures 7, 9).
"""

from __future__ import annotations

import numpy as np

from repro.framework.context import FrameworkContext
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register
from repro.workloads.traversal import UNVISITED


class DegreeCentrality(Workload):
    """In/out-degree centrality via atomic edge counting.

    Every edge (u, v) increments ``in_degree[v]`` with ``lock addw`` —
    an irregular atomic per edge, the densest offloading candidate
    stream of the suite.
    """

    code = "DC"
    name = "Degree centrality"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock addw"
    pim_op = AtomicOp.ADD
    applicable = True

    def execute(self, ctx: FrameworkContext, graph: CsrGraph) -> dict:
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        in_degree = ctx.property_table("dc.in_degree", n, 0)
        out_degree = ctx.property_table("dc.out_degree", n, 0)

        def count(tid, trace, u):
            trace.work(2)
            local_out = 0
            for v in tg.neighbors(trace, u):
                in_degree.fetch_add(trace, v, 1)
                local_out += 1
                trace.work(1)
            out_degree.write(trace, u, local_out)

        ctx.parallel_for(list(range(n)), count)
        return {
            "in_degree": in_degree.values.copy(),
            "out_degree": out_degree.values.copy(),
        }


class BetweennessCentrality(Workload):
    """Brandes' algorithm over a sample of source vertices.

    The forward sweep counts shortest paths with integer atomics; the
    backward sweep accumulates dependencies with atomic floating-point
    adds (the operation HMC 2.0 lacks, Table III) plus a large amount of
    thread-local arithmetic, reproducing BC's compute-bound profile.
    """

    code = "BC"
    name = "Betweenness centrality"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg (FP-add loop)"
    pim_op = AtomicOp.FP_ADD
    applicable = True
    needs_fp_extension = True
    missing_operation = "Floating point add"

    #: Extra per-accumulation arithmetic (divide, multiply, add chains)
    #: charged to model BC's heavy thread-local centrality computation.
    ACCUMULATION_WORK = 24

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        num_sources: int = 4,
    ) -> dict:
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        # BC's per-traversal arrays are packed and reused heavily within
        # a source traversal — the data locality that makes cache
        # bypassing a loss for BC (Figures 7/10/14).
        centrality = ctx.property_table(
            "bc.centrality", n, 0.0, dtype=np.float64, element_size=8
        )
        sigma = ctx.property_table("bc.sigma", n, 0, element_size=8)
        depth = ctx.property_table("bc.depth", n, UNVISITED, element_size=8)
        delta = ctx.property_table(
            "bc.delta", n, 0.0, dtype=np.float64, element_size=8
        )

        order = np.argsort(-graph.out_degrees(), kind="stable")
        sources = [int(v) for v in order[:num_sources]]

        for s in sources:
            self._accumulate_from_source(ctx, tg, s, centrality, sigma, depth, delta)

        return {"centrality": centrality.values.copy(), "sources": sources}

    def _accumulate_from_source(
        self, ctx, tg, source, centrality, sigma, depth, delta
    ) -> None:
        n = tg.num_vertices
        trace0 = ctx.threads[0]

        def reset(tid, trace, v):
            trace.work(2)
            sigma.write(trace, v, 0)
            depth.write(trace, v, UNVISITED)
            delta.write(trace, v, 0.0)

        ctx.parallel_for(list(range(n)), reset)
        sigma.write(trace0, source, 1)
        depth.write(trace0, source, 0)

        levels: list[list[int]] = [[source]]
        level = 0
        while levels[-1]:
            frontier = levels[-1]
            next_level: list[int] = []

            def expand(tid, trace, u, _level=level):
                trace.work(4)
                su = sigma.read(trace, u)
                for v in tg.neighbors(trace, u):
                    dv = depth.read(trace, v)
                    if dv == UNVISITED:
                        if depth.cas(trace, v, UNVISITED, _level + 1):
                            next_level.append(v)
                            dv = _level + 1
                    if dv == _level + 1:
                        sigma.fetch_add(trace, v, su)

            ctx.parallel_for(frontier, expand)
            levels.append(next_level)
            level += 1

        # Backward dependency accumulation, deepest level first.
        for back_level in range(len(levels) - 2, -1, -1):
            frontier = levels[back_level]

            def accumulate(tid, trace, u, _level=back_level):
                trace.work(4)
                su = sigma.read(trace, u)
                acc = 0.0
                for v in tg.neighbors(trace, u):
                    if depth.read(trace, v) == _level + 1:
                        sv = sigma.read(trace, v)
                        dv = delta.read(trace, v)
                        trace.work(self.ACCUMULATION_WORK)
                        acc += (su / sv) * (1.0 + dv)
                if acc:
                    delta.fp_add(trace, u, acc)
                if u != levels[0][0]:
                    trace.work(2)
                    centrality.fp_add(trace, u, acc)

            ctx.parallel_for(frontier, accumulate)


DC = register(DegreeCentrality())
BC = register(BetweennessCentrality())
