"""Workload registry.

Workload modules register singleton instances here at import time;
benches and the harness look them up by code.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.workloads.base import Workload

_REGISTRY: dict[str, Workload] = {}

#: The eight workloads evaluated in Figures 7/9/10/11/12/13/14/15/16.
FIGURE7_CODES = ("BFS", "CComp", "DC", "kCore", "SSSP", "TC", "BC", "PRank")


def register(workload: Workload) -> Workload:
    """Register a workload instance (module import side effect)."""
    if not workload.code:
        raise ConfigError("workload must define a code")
    if workload.code in _REGISTRY:
        raise ConfigError(f"duplicate workload code {workload.code!r}")
    _REGISTRY[workload.code] = workload
    return workload


def get_workload(code: str) -> Workload:
    """Look up a workload by its short code (e.g. ``"BFS"``)."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigError(
            f"unknown workload {code!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[Workload]:
    """All registered workloads in registration order."""
    return list(_REGISTRY.values())


def applicable_workloads(with_fp_extension: bool = True) -> list[Workload]:
    """Workloads whose atomics map onto PIM-Atomic ops (Table III)."""
    selected = []
    for workload in _REGISTRY.values():
        if not workload.applicable:
            continue
        if workload.needs_fp_extension and not with_fp_extension:
            continue
        selected.append(workload)
    return selected


def figure7_workloads() -> list[Workload]:
    """The evaluation set of Figure 7, in the paper's plot order."""
    return [get_workload(code) for code in FIGURE7_CODES]
