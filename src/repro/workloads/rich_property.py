"""Rich Property workloads: Triangle Count and Gibbs Inference.

Triangle Count is applicable (``lock add`` on triangle counters) but
compute-bound inside neighbor-list intersections; Gibbs Inference
performs heavy numeric work over large per-vertex stochastic tables and
is Table III's "computation intensive" inapplicable case.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import DeterministicRng
from repro.framework.context import FrameworkContext
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register


class TriangleCount(Workload):
    """Per-vertex triangle counting on the symmetrized graph.

    For every edge (u, v) with u < v, the sorted neighbor lists of u and
    v are merge-intersected (streaming structure loads plus compare
    work); each triangle found bumps all three vertices' counters with
    ``lock add``.  ``max_degree`` optionally skips hub vertices so the
    quadratic intersection cost stays tractable on power-law inputs.
    """

    code = "TC"
    name = "Triangle count"
    category = Category.RICH_PROPERTY
    host_instruction = "lock add"
    pim_op = AtomicOp.ADD
    applicable = True

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        max_degree: int | None = None,
        sample_fraction: float = 1.0,
    ) -> dict:
        undirected = graph.undirected()
        tg = ctx.register_graph(undirected)
        n = undirected.num_vertices
        # Packed counters: TC is intersection-compute bound and its few
        # atomics land on a small array (lower miss rate, Figure 10).
        triangles = ctx.property_table("tc.count", n, 0, element_size=8)
        degrees = undirected.out_degrees()

        def degree_ok(v: int) -> bool:
            return max_degree is None or degrees[v] <= max_degree

        def count_for(tid, trace, u):
            trace.work(3)
            if not degree_ok(u):
                return
            u_start, u_end = undirected.neighbor_slice(u)
            columns = undirected.columns
            local_count = 0
            for j in range(u_start, u_end):
                trace.work(2)
                trace.load(tg.columns_alloc.addr_of(j), 8)
                v = int(columns[j])
                if v <= u or not degree_ok(v):
                    continue
                # Merge-intersect sorted adjacency of u and v, counting
                # common neighbors w > v (each triangle counted once,
                # at its minimum vertex).
                iu, iv = u_start, undirected.row_offsets[v]
                v_end = undirected.row_offsets[v + 1]
                while iu < u_end and iv < v_end:
                    trace.work(3)
                    trace.load(tg.columns_alloc.addr_of(iu), 8)
                    trace.load(tg.columns_alloc.addr_of(int(iv)), 8)
                    a, b = int(columns[iu]), int(columns[iv])
                    if a < b:
                        iu += 1
                    elif b < a:
                        iv += 1
                    else:
                        if a > v and degree_ok(a):
                            local_count += 1
                        iu += 1
                        iv += 1
            # One atomic accumulation per vertex (thread-local counting
            # inside the scan): TC's atomic density is low, which is
            # why its PIM benefit is marginal (Section IV-B1).
            if local_count:
                triangles.fetch_add(trace, u, local_count)

        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        step = max(1, int(round(1.0 / sample_fraction)))
        ctx.parallel_for(list(range(0, n, step)), count_for)
        counts = triangles.values.copy()
        return {
            # counts[u] = triangles whose minimum vertex is u.
            "per_vertex": counts,
            "total_triangles": int(counts.sum()),
            "sampled_vertices": len(range(0, n, step)),
        }


class GibbsInference(Workload):
    """Gibbs sampling over a pairwise Markov random field.

    Each vertex carries a rich property: a conditional table of
    ``num_labels**2`` doubles.  Sweeps read neighbor states, accumulate
    log-potentials (heavy FP work), and sample a new state.  Updates are
    owner-written, so there are no shared atomics — Table III marks this
    workload inapplicable ("Computation intensive").
    """

    code = "GInfer"
    name = "Gibbs inference"
    category = Category.RICH_PROPERTY
    host_instruction = None
    pim_op = None
    applicable = False
    missing_operation = "Computation intensive"

    #: Arithmetic charged per (label, neighbor) potential evaluation.
    POTENTIAL_WORK = 12

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        num_labels: int = 4,
        sweeps: int = 2,
        seed: int = 7,
    ) -> dict:
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        rng = DeterministicRng(seed).fork("gibbs", n)

        state = ctx.property_table("gibbs.state", n, 0, element_size=8)
        table_bytes = num_labels * num_labels * 8
        tables_alloc = ctx.alloc_property("gibbs.cpt", n, table_bytes)
        potentials = rng.random(n * num_labels * num_labels).reshape(
            n, num_labels, num_labels
        )

        init_states = rng.integers(0, num_labels, size=n)
        trace0 = ctx.threads[0]
        for v in range(n):
            state.write(trace0, v, int(init_states[v]))
        ctx.barrier()

        for _ in range(sweeps):
            def resample(tid, trace, v):
                trace.work(4)
                # Load this vertex's full conditional table (rich
                # property: several cache lines).
                base = tables_alloc.addr_of(v)
                for offset in range(0, table_bytes, 64):
                    trace.load(base + offset, 64)
                scores = np.zeros(num_labels)
                for u in tg.neighbors(trace, v):
                    su = state.read(trace, u)
                    trace.work(self.POTENTIAL_WORK * num_labels)
                    scores += potentials[v, :, su]
                trace.work(8 * num_labels)  # normalize + sample
                new_state = int(np.argmax(scores)) if scores.any() else 0
                state.write(trace, v, new_state)

            ctx.parallel_for(list(range(n)), resample)

        return {"state": state.values.copy(), "num_labels": num_labels}


TC = register(TriangleCount())
GINFER = register(GibbsInference())
