"""Dynamic Graph workloads: construction, update, topology morphing.

These workloads mutate the graph structure at run time.  Their critical
sections involve multiple memory operands (head pointer, node payload,
size counters), which no single HMC 2.0 atomic can express — Table III
marks all three inapplicable ("Complex operation").  Their per-vertex
locks are CAS operations on *structure-region* words, so GraphPIM's
address-based targeting correctly leaves them on the host.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import DeterministicRng
from repro.framework.context import FrameworkContext
from repro.graph.csr import CsrGraph
from repro.graph.dynamic import DynamicGraph
from repro.trace.events import AtomicOp
from repro.trace.stream import ThreadTrace
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register


class _TracedMutableGraph:
    """Trace-recording wrapper around :class:`DynamicGraph`.

    Models the memory behavior of a lock-based adjacency-list store:
    per-vertex lock word + head pointer in the structure region, list
    nodes bump-allocated from a structure arena, and a metadata edge
    counter.
    """

    #: Bytes per adjacency node (target id + next pointer).
    NODE_BYTES = 16

    def __init__(self, ctx: FrameworkContext, num_vertices: int, arena_nodes: int):
        self.ctx = ctx
        self.dyn = DynamicGraph(num_vertices)
        self.locks = ctx.alloc_structure("dyn.locks", num_vertices, 8)
        self.heads = ctx.alloc_structure("dyn.heads", num_vertices, 8)
        self.arena = ctx.alloc_structure(
            "dyn.arena", arena_nodes, self.NODE_BYTES
        )
        self.edge_counter = ctx.alloc_meta("dyn.edge_count", 1, 8)
        self._next_node = 0

    def _lock(self, trace: ThreadTrace, vertex: int) -> None:
        # Spinlock acquire: CAS on a structure-region word.  Not a PMR
        # address, so never a PIM offload candidate.
        trace.atomic(AtomicOp.CAS, self.locks.addr_of(vertex), 8, True)

    def _unlock(self, trace: ThreadTrace, vertex: int) -> None:
        trace.store(self.locks.addr_of(vertex), 8)

    def _count_edge(self, trace: ThreadTrace) -> None:
        # The edge counter is shared by all threads and updated outside
        # any vertex lock, so it must be a fetch-add; a plain
        # load+store pair here is the lost-update race RACE001 flags.
        trace.atomic(AtomicOp.ADD, self.edge_counter.addr_of(0), 8, False)

    def alloc_node(self, trace: ThreadTrace) -> int:
        """Bump-allocate one adjacency node slot and record its store."""
        node = self._next_node % self.arena.num_elements
        self._next_node += 1
        trace.store(self.arena.addr_of(node), self.NODE_BYTES)
        return node

    def insert_edge(self, trace: ThreadTrace, src: int, dst: int) -> None:
        """Locked head insertion of a new adjacency node."""
        trace.work(6)
        self._lock(trace, src)
        trace.load(self.heads.addr_of(src), 8)
        self.alloc_node(trace)
        trace.store(self.heads.addr_of(src), 8)
        self._unlock(trace, src)
        self._count_edge(trace)
        self.dyn.add_edge(src, dst)

    def delete_edge(self, trace: ThreadTrace, src: int, dst: int) -> bool:
        """Locked unlink: walks the list to find the node."""
        trace.work(6)
        self._lock(trace, src)
        trace.load(self.heads.addr_of(src), 8)
        found = False
        for position, neighbor in enumerate(self.dyn.neighbors(src)):
            trace.work(2)
            trace.load(
                self.arena.addr_of(position % self.arena.num_elements),
                self.NODE_BYTES,
            )
            if neighbor == dst:
                found = True
                break
        if found:
            trace.store(self.heads.addr_of(src), 8)
            self.dyn.remove_edge(src, dst)
            self._count_edge(trace)
        self._unlock(trace, src)
        return found


class GraphConstruction(Workload):
    """Stream a full edge list into an empty dynamic graph (GCons)."""

    code = "GCons"
    name = "Graph construction"
    category = Category.DYNAMIC_GRAPH
    host_instruction = None
    pim_op = None
    applicable = False
    missing_operation = "Complex operation"

    def execute(self, ctx: FrameworkContext, graph: CsrGraph) -> dict:
        store = _TracedMutableGraph(
            ctx, graph.num_vertices, max(graph.num_edges, 1)
        )
        edges = [(u, v) for u, v in graph.iter_edges()]

        def insert(tid, trace, edge):
            store.insert_edge(trace, edge[0], edge[1])

        ctx.parallel_for(edges, insert)
        return {
            "edges_inserted": store.dyn.num_edges,
            "matches_input": store.dyn.num_edges == graph.num_edges,
        }


class GraphUpdate(Workload):
    """Mixed delete/insert churn on an existing dynamic graph (GUp)."""

    code = "GUp"
    name = "Graph update"
    category = Category.DYNAMIC_GRAPH
    host_instruction = None
    pim_op = None
    applicable = False
    missing_operation = "Complex operation"

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        churn_fraction: float = 0.2,
        seed: int = 7,
    ) -> dict:
        store = _TracedMutableGraph(
            ctx, graph.num_vertices, max(graph.num_edges * 2, 1)
        )
        store.dyn = DynamicGraph.from_csr(graph)
        rng = DeterministicRng(seed).fork("gup", graph.num_vertices)

        all_edges = [(u, v) for u, v in graph.iter_edges()]
        num_ops = max(1, int(len(all_edges) * churn_fraction))
        delete_idx = rng.choice(len(all_edges), size=num_ops, replace=False)
        deletions = [all_edges[i] for i in delete_idx]
        insert_src = rng.integers(0, graph.num_vertices, size=num_ops)
        insert_dst = rng.integers(0, graph.num_vertices, size=num_ops)
        insertions = list(zip(insert_src.tolist(), insert_dst.tolist()))

        deleted = 0

        def delete(tid, trace, edge):
            nonlocal deleted
            if store.delete_edge(trace, edge[0], edge[1]):
                deleted += 1

        ctx.parallel_for(deletions, delete)

        def insert(tid, trace, edge):
            store.insert_edge(trace, edge[0], edge[1])

        ctx.parallel_for(insertions, insert)
        return {
            "deleted": deleted,
            "inserted": num_ops,
            "final_edges": store.dyn.num_edges,
        }


class TopologyMorphing(Workload):
    """Edge contraction / vertex merging (TMorph).

    Picks random edges and merges the destination into the source —
    the triangulation-style restructuring the paper cites, involving
    multi-operand pointer surgery under locks.
    """

    code = "TMorph"
    name = "Topology morphing"
    category = Category.DYNAMIC_GRAPH
    host_instruction = None
    pim_op = None
    applicable = False
    missing_operation = "Complex operation"

    def execute(
        self,
        ctx: FrameworkContext,
        graph: CsrGraph,
        merge_fraction: float = 0.05,
        seed: int = 7,
    ) -> dict:
        store = _TracedMutableGraph(
            ctx, graph.num_vertices, max(graph.num_edges * 2, 1)
        )
        store.dyn = DynamicGraph.from_csr(graph)
        rng = DeterministicRng(seed).fork("tmorph", graph.num_vertices)

        num_merges = max(1, int(graph.num_vertices * merge_fraction))
        srcs = rng.integers(0, graph.num_vertices, size=num_merges)
        dsts = rng.integers(0, graph.num_vertices, size=num_merges)
        merges = [
            (int(s), int(d)) for s, d in zip(srcs, dsts) if s != d
        ]

        merged = 0

        def contract(tid, trace, pair):
            nonlocal merged
            src, dst = pair
            trace.work(8)
            store._lock(trace, src)
            store._lock(trace, dst)
            # Walk dst's list, moving each node onto src's list.
            moved = list(store.dyn.neighbors(dst))
            for position in range(len(moved)):
                trace.load(
                    store.arena.addr_of(position % store.arena.num_elements),
                    store.NODE_BYTES,
                )
                # Relinked nodes land in fresh bump-allocated slots:
                # writing slots [1..deg] here would collide with every
                # concurrent contraction (RACE001).
                store.alloc_node(trace)
                trace.work(3)
            trace.store(store.heads.addr_of(src), 8)
            trace.store(store.heads.addr_of(dst), 8)
            store.dyn.contract_edge(src, dst)
            store._unlock(trace, dst)
            store._unlock(trace, src)
            merged += 1

        ctx.parallel_for(merges, contract)
        return {"merged": merged, "final_edges": store.dyn.num_edges}


GCONS = register(GraphConstruction())
GUP = register(GraphUpdate())
TMORPH = register(TopologyMorphing())
