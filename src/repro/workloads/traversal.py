"""Graph Traversal workloads: BFS, DFS, SSSP, k-Core.

These are the paper's flagship offloading targets (Table II): their
property updates are single-word CAS/add/sub operations on irregularly
accessed per-vertex state.
"""

from __future__ import annotations

import numpy as np

from repro.framework.context import FrameworkContext
from repro.framework.frontier import Frontier
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload
from repro.workloads.registry import register

#: Sentinel depth/distance for unvisited vertices (Figure 3's MAX).
UNVISITED = np.iinfo(np.int64).max

#: Unreachable distance for SSSP.
INFINITE_DIST = float("inf")


def default_root(graph: CsrGraph) -> int:
    """Deterministic traversal root: the max-out-degree vertex."""
    return int(np.argmax(graph.out_degrees()))


class BreadthFirstSearch(Workload):
    """Vertex-frontier BFS exactly as in the paper's Figure 3.

    Each step processes the frontier in parallel; neighbor depths are
    checked with a plain load and claimed with ``lock cmpxchg``.
    """

    code = "BFS"
    name = "Breadth-first search"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg"
    pim_op = AtomicOp.CAS
    applicable = True

    def execute(
        self, ctx: FrameworkContext, graph: CsrGraph, root: int | None = None
    ) -> dict:
        if root is None:
            root = default_root(graph)
        tg = ctx.register_graph(graph)
        depth = ctx.property_table("bfs.depth", graph.num_vertices, UNVISITED)

        next_frontiers = [
            Frontier(ctx, f"bfs.frontier.{tid}", graph.num_vertices)
            for tid in range(ctx.num_threads)
        ]
        depth.write(ctx.threads[0], root, 0)
        frontier = [root]
        level = 0
        while frontier:
            def visit(tid, trace, u, _level=level):
                trace.work(4)  # pop bookkeeping + depth register reuse
                for v in tg.neighbors(trace, u):
                    # Section II-D: "all neighbor vertices' properties are
                    # accessed via CAS atomic operations" — one CAS per
                    # traversed edge; failures mean already visited.
                    if depth.cas(trace, v, UNVISITED, _level + 1):
                        next_frontiers[tid].push(trace, v)

            ctx.parallel_for(frontier, visit)
            frontier = []
            for tid, nf in enumerate(next_frontiers):
                frontier.extend(nf.drain(ctx.threads[tid]))
            level += 1

        depths = depth.values.copy()
        visited = int(np.count_nonzero(depths != UNVISITED))
        return {"depth": depths, "visited": visited, "levels": level, "root": root}


class DepthFirstSearch(Workload):
    """Parallel DFS forest: threads claim vertices with CAS.

    Each thread runs a stack-based DFS over its share of root
    candidates; the shared ``visited`` property is claimed atomically so
    no vertex is expanded twice.
    """

    code = "DFS"
    name = "Depth-first search"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg"
    pim_op = AtomicOp.CAS
    applicable = True

    def execute(self, ctx: FrameworkContext, graph: CsrGraph) -> dict:
        tg = ctx.register_graph(graph)
        visited = ctx.property_table("dfs.visited", graph.num_vertices, 0)
        parent = np.full(graph.num_vertices, -1, dtype=np.int64)
        stack_alloc = ctx.alloc_meta(
            "dfs.stacks", ctx.num_threads * 64, 8
        )
        order: list[int] = []

        roots = list(range(graph.num_vertices))
        for tid, part in enumerate(ctx.partition(roots)):
            trace = ctx.threads[tid]
            stack_base = tid * 64
            for r in part:
                trace.work(3)
                if visited.read(trace, r) != 0:
                    continue
                if not visited.cas(trace, r, 0, 1):
                    continue
                order.append(r)
                stack = [r]
                while stack:
                    trace.load(stack_alloc.addr_of(stack_base + (len(stack) - 1) % 64), 8)
                    u = stack.pop()
                    for v in tg.neighbors(trace, u):
                        if visited.read(trace, v) == 0:
                            if visited.cas(trace, v, 0, 1):
                                parent[v] = u
                                order.append(v)
                                trace.store(
                                    stack_alloc.addr_of(
                                        stack_base + len(stack) % 64
                                    ),
                                    8,
                                )
                                stack.append(v)
        ctx.barrier()
        return {
            "parent": parent,
            "order": np.asarray(order, dtype=np.int64),
            "visited": int(visited.values.sum()),
        }


class ShortestPath(Workload):
    """Frontier-relaxation SSSP (Bellman-Ford style).

    Distance improvements are claimed with the read + ``lock cmpxchg``
    pattern of Table II.  Unweighted graphs fall back to unit weights.
    """

    code = "SSSP"
    name = "Shortest path"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg"
    pim_op = AtomicOp.CAS
    applicable = True

    def execute(
        self, ctx: FrameworkContext, graph: CsrGraph, root: int | None = None
    ) -> dict:
        if root is None:
            root = default_root(graph)
        tg = ctx.register_graph(graph)
        dist = ctx.property_table(
            "sssp.dist", graph.num_vertices, INFINITE_DIST, dtype=np.float64
        )
        next_frontiers = [
            Frontier(ctx, f"sssp.frontier.{tid}", graph.num_vertices)
            for tid in range(ctx.num_threads)
        ]
        weighted = graph.weights is not None
        dist.write(ctx.threads[0], root, 0.0)
        frontier = [root]
        rounds = 0
        # Bellman-Ford terminates after at most V rounds; the frontier
        # variant usually needs far fewer.  Every traversed edge issues
        # an atomic CAS-min relaxation (lock cmpxchg loop, Table II);
        # the returned old value signals whether the distance improved.
        while frontier and rounds <= graph.num_vertices:
            def relax(tid, trace, u):
                trace.work(4)
                du = dist.read(trace, u)
                if weighted:
                    edges = tg.neighbors_with_weights(trace, u)
                else:
                    edges = ((v, 1.0) for v in tg.neighbors(trace, u))
                for v, w in edges:
                    trace.work(2)  # add + compare
                    if dist.cas_improve_min(trace, v, du + w):
                        next_frontiers[tid].push(trace, v)

            ctx.parallel_for(frontier, relax)
            merged: list[int] = []
            for tid, nf in enumerate(next_frontiers):
                merged.extend(nf.drain(ctx.threads[tid]))
            # Deduplicate while keeping deterministic order.
            frontier = list(dict.fromkeys(merged))
            rounds += 1

        return {"dist": dist.values.copy(), "root": root, "rounds": rounds}


class KCoreDecomposition(Workload):
    """Iterative k-core peeling.

    Every round scans *all* vertices (the paper notes kCore "spends a
    significant amount of time checking inactive vertices"); removals
    decrement neighbor degrees with ``lock subw``.
    """

    code = "kCore"
    name = "K-core decomposition"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock subw"
    pim_op = AtomicOp.SUB
    applicable = True

    def execute(
        self, ctx: FrameworkContext, graph: CsrGraph, k: int | None = None
    ) -> dict:
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        # kCore's working arrays are packed (8 bytes/vertex): the
        # whole-graph scan each round streams them with spatial
        # locality, which is why kCore shows a lower candidate miss
        # rate in the paper's Figure 10.
        degree = ctx.property_table("kcore.degree", n, 0, element_size=8)
        active = ctx.property_table("kcore.active", n, 1, element_size=8)

        out_degrees = graph.out_degrees()
        if k is None:
            # GraphBIG's default: peel the low-degree fringe.  The
            # workload's signature cost is re-scanning inactive
            # vertices across rounds, not the removals (its atomic
            # count is small — Section IV-B1).
            k = 5

        def init(tid, trace, v):
            trace.work(2)
            degree.write(trace, v, int(out_degrees[v]))

        vertices = list(range(n))
        ctx.parallel_for(vertices, init)

        removed_total = 0
        changed = True
        rounds = 0
        while changed:
            changed = False
            removals_this_round = []

            def scan_and_update(tid, trace, v):
                nonlocal changed
                trace.work(3)
                if active.read(trace, v) == 0:
                    return
                if degree.read(trace, v) < k:
                    active.write(trace, v, 0)
                    removals_this_round.append(v)
                    changed = True
                    for u in tg.neighbors(trace, v):
                        degree.fetch_sub(trace, u, 1)

            ctx.parallel_for(vertices, scan_and_update)
            removed_total += len(removals_this_round)
            rounds += 1

        core_mask = active.values.copy().astype(bool)
        return {
            "in_core": core_mask,
            "core_size": int(core_mask.sum()),
            "removed": removed_total,
            "rounds": rounds,
            "k": k,
        }


BFS = register(BreadthFirstSearch())
DFS = register(DepthFirstSearch())
SSSP = register(ShortestPath())
KCORE = register(KCoreDecomposition())
