"""Workload base class and run records."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.framework.context import FrameworkContext
from repro.graph.csr import CsrGraph
from repro.memlayout.allocator import AddressSpace
from repro.trace.events import AtomicOp
from repro.trace.stats import TraceStats, summarize_trace
from repro.trace.stream import Trace


class Category(Enum):
    """The paper's workload taxonomy (Section II-B)."""

    GRAPH_TRAVERSAL = "GT"
    RICH_PROPERTY = "RP"
    DYNAMIC_GRAPH = "DG"


@dataclass
class WorkloadRun:
    """Everything produced by one functional workload execution."""

    workload: "Workload"
    trace: Trace
    address_space: AddressSpace
    outputs: dict[str, Any] = field(default_factory=dict)
    _stats: TraceStats | None = field(default=None, repr=False)

    @property
    def stats(self) -> TraceStats:
        """Lazily computed static trace statistics."""
        if self._stats is None:
            self._stats = summarize_trace(self.trace)
        return self._stats


class Workload(abc.ABC):
    """A GraphBIG-equivalent workload.

    Subclasses define the identification metadata used by Tables II/III
    and implement :meth:`execute`, which runs the algorithm against a
    :class:`FrameworkContext` and returns its functional outputs.
    """

    #: Short name used in the paper's figures (e.g. "BFS", "kCore").
    code: str = ""
    #: Human-readable name as in Table III.
    name: str = ""
    category: Category = Category.GRAPH_TRAVERSAL
    #: Host atomic instruction offloaded (Table II), None if inapplicable.
    host_instruction: str | None = None
    #: Primary PIM-Atomic op used, None if inapplicable.
    pim_op: AtomicOp | None = None
    #: Whether HMC 2.0 atomics (plus the FP extension, if flagged) cover
    #: this workload's property updates (Table III).
    applicable: bool = True
    #: Whether applicability relies on the FP-add/sub extension.
    needs_fp_extension: bool = False
    #: Table III's "missing operation" note when not applicable.
    missing_operation: str | None = None

    @abc.abstractmethod
    def execute(self, ctx: FrameworkContext, graph: CsrGraph, **params) -> dict:
        """Run the algorithm, recording its trace into ``ctx``.

        Returns functional outputs for correctness checking.
        """

    def run(
        self,
        graph: CsrGraph,
        num_threads: int = 16,
        plain_atomics: bool = False,
        **params,
    ) -> WorkloadRun:
        """Execute on a fresh context and seal the trace."""
        ctx = FrameworkContext(num_threads=num_threads, name=self.code)
        ctx.plain_atomics = plain_atomics
        outputs = self.execute(ctx, graph, **params)
        trace = ctx.finish()
        return WorkloadRun(
            workload=self,
            trace=trace,
            address_space=ctx.address_space,
            outputs=outputs,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code!r})"
