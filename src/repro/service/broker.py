"""Job broker: admission control between the HTTP frontend and runner.

The broker is the service's state machine.  One submitted
:class:`~repro.runner.spec.ExperimentSpec` becomes one :class:`Job`
whose identity *is* its content hash
(:func:`~repro.runner.fingerprint.spec_key`), which buys three
properties for free:

- **single-flight coalescing** — N concurrent submissions of the same
  spec map onto one Job; exactly one simulation runs and every caller
  polls the same job id and receives the same canonical response bytes;
- **cache short-circuit** — a spec whose response is already in the
  on-disk response store completes at admission time without ever
  entering the queue (no tracing, no simulation);
- **idempotent retries** — a client that times out and resubmits can
  never duplicate work.

Admission control is explicit and bounded:

- a per-client token bucket (``rate_limit_rps`` / ``rate_limit_burst``)
  rejects chatty clients with :class:`RateLimitedError`;
- a bounded admission count (``queue_capacity`` over both priority
  lanes) rejects overload with :class:`QueueFullError` — queue memory
  can never grow without bound;
- two priority lanes (``interactive`` drains before ``batch``) keep
  small what-if queries responsive under bulk sweeps.

Graceful drain (:meth:`JobBroker.drain`, wired to SIGTERM by
``repro serve``): new submissions are rejected with
:class:`DrainingError`, in-flight jobs run to completion (bounded by
``drain_timeout_s``), and queued-but-unstarted jobs are checkpointed to
``service_queue.jsonl`` under the cache root — the PR 3 journal format
(one JSON object per line, torn-line tolerant) — which
:meth:`JobBroker.start` restores and clears on the next boot.  A drain
with nothing queued leaves no checkpoint behind.
"""

from __future__ import annotations

import asyncio
import functools
import inspect
import json
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.common.errors import ReproError, ServiceError
from repro.fleet.manager import FleetManager
from repro.obs.logs import (
    current_request_id,
    get_logger,
    reset_request_id,
    set_request_id,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import CallbackPublisher
from repro.runner.cache import ResultCache
from repro.runner.engine import execute_spec
from repro.runner.fingerprint import spec_key
from repro.runner.spec import ExperimentSpec
from repro.service.config import QUEUE_CHECKPOINT_FILENAME, ServiceConfig

_log = get_logger("service")

#: Priority lanes in drain order: interactive jobs always pop first.
LANES = ("interactive", "batch")

#: SSE event names that end a job's stream; after one of these the
#: server closes the connection and clients stop reconnecting.
TERMINAL_EVENTS = ("done", "failed", "checkpointed")

#: Request-latency-ish histogram bounds in seconds (simulations run
#: from milliseconds at tiny scale to minutes at paper scale).
EXECUTE_SECONDS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0,
)


class AdmissionError(ServiceError):
    """A submission was rejected by admission control."""

    #: Machine-readable rejection reason (metrics label, JSON field).
    reason = "rejected"

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFullError(AdmissionError):
    """The bounded admission queue is at capacity (HTTP 429)."""

    reason = "backpressure"


class RateLimitedError(AdmissionError):
    """The client's token bucket is empty (HTTP 429)."""

    reason = "rate_limited"


class DrainingError(AdmissionError):
    """The broker is draining and accepts no new work (HTTP 503)."""

    reason = "draining"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now

    def try_acquire(self) -> bool:
        """Take one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token will be available."""
        self._refill()
        if self._tokens >= 1.0 or self.rate <= 0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


def canonical_json(payload: dict) -> bytes:
    """The one serialization used for every job response.

    Sorted keys, no whitespace: two renderings of equal payloads are
    equal *bytes*, which is what makes the coalescing bit-identity
    guarantee checkable with ``==`` on raw HTTP bodies.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@dataclass
class Job:
    """One unit of service work, identified by its spec's content hash."""

    job_id: str  # == spec_key(spec)
    spec: ExperimentSpec
    priority: str
    status: str = "queued"  # queued|running|done|failed|checkpointed
    error: str = ""
    #: Extra submissions that mapped onto this job while it was live.
    coalesced: int = 0
    #: True when admission answered from the response store (no queue).
    from_cache: bool = False
    #: Canonical response body once terminal-with-results.
    result_bytes: Optional[bytes] = None
    execute_seconds: float = 0.0
    #: Request id of the original submission, propagated through fleet
    #: lease/complete calls into worker-side structured logs.
    request_id: str = ""
    #: Fleet worker currently holding this job's lease ("" = none).
    lease_worker: str = ""
    #: Involuntary lease releases this job survived (expiry / dead
    #: worker); at MAX_LEASE_EXPIRIES the job is quarantined.
    lease_expiries: int = 0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "checkpointed")

    def status_dict(self) -> dict:
        """Lightweight status view (``GET /v1/jobs/{id}`` while live)."""
        status = {
            "job_id": self.job_id,
            "status": self.status,
            "priority": self.priority,
            "workload": self.spec.workload,
            "scale": self.spec.scale,
            "coalesced": self.coalesced,
            "from_cache": self.from_cache,
            "error": self.error,
        }
        if self.lease_worker:
            status["worker"] = self.lease_worker
        return status


@dataclass
class _JobStream:
    """Per-job SSE fan-out state: monotonic ids, replay ring, queues.

    Event ids start at 1 and only grow; the ring keeps the newest
    ``stream_ring_size`` ``(id, event, data)`` tuples for
    ``Last-Event-ID`` replay.  ``closed`` flips when a terminal event
    is published — late subscribers then get the terminal event from
    the ring (or a synthesized one) and the server ends their stream.
    """

    ring: deque
    subscribers: "list[asyncio.Queue]" = field(default_factory=list)
    next_id: int = 0
    closed: bool = False


class JobBroker:
    """Single-flight, bounded, priority-aware front of the runner.

    All mutable state is touched only from coroutines on one event
    loop, so there are no locks — every await point leaves the
    structures consistent.  The actual simulation runs in a bounded
    :class:`ThreadPoolExecutor` via ``execute`` (default:
    :func:`~repro.runner.engine.execute_spec`), which tests replace
    with counting fakes to prove the coalescing invariant.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        execute: Optional[Callable[..., dict]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._execute = execute or execute_spec
        # Tests inject two-argument execute fakes; only pass a live
        # publisher/recorder through to callables that declare the
        # parameter.
        try:
            parameters = inspect.signature(self._execute).parameters
            self._execute_takes_publisher = "publisher" in parameters
            self._execute_takes_recorder = "recorder" in parameters
        except (TypeError, ValueError):
            self._execute_takes_publisher = False
            self._execute_takes_recorder = False
        self._clock = clock
        self._streams: "dict[str, _JobStream]" = {}
        self._stream_subscribers = 0
        self._jobs: "dict[str, Job]" = {}
        self._lanes: "dict[str, deque[Job]]" = {
            lane: deque() for lane in LANES
        }
        self._cond: Optional[asyncio.Condition] = None
        self._workers: "list[asyncio.Task]" = []
        self._prune_task: Optional[asyncio.Task] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._terminal: "deque[str]" = deque()
        self._draining = False
        self._inflight = 0
        self._workers_alive = 0
        self._worker_crashes = 0
        self._worker_restarts = 0
        cache_dir = self.config.runner.cache_dir
        #: Response store: full canonical job responses keyed by
        #: spec_key, in a sibling namespace of the SimResult cache so
        #: `repro cache --verify` never sees (and quarantines) them.
        self._responses = (
            ResultCache(Path(cache_dir) / "service")
            if cache_dir is not None
            else None
        )
        self._checkpoint_path = (
            Path(cache_dir) / QUEUE_CHECKPOINT_FILENAME
            if cache_dir is not None
            else None
        )
        self._init_metrics()
        #: Remote-worker tier: registry, hash-ring sharding, leases.
        self.fleet = FleetManager(self)
        self._fleet_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _init_metrics(self) -> None:
        reg = self.registry
        self._m_depth = reg.gauge(
            "service_queue_depth", "Queued jobs per priority lane"
        )
        self._m_inflight = reg.gauge(
            "service_jobs_inflight", "Jobs currently executing"
        )
        self._m_submissions = reg.counter(
            "service_submissions_total",
            "Submissions by admission outcome",
        )
        self._m_coalesced = reg.counter(
            "service_coalesced_hits_total",
            "Submissions coalesced onto an already-live identical job",
        )
        self._m_rejected = reg.counter(
            "service_rejected_total", "Rejected submissions by reason"
        )
        self._m_jobs = reg.counter(
            "service_jobs_total", "Jobs reaching a terminal state"
        )
        self._m_execute = reg.histogram(
            "service_job_execute_seconds",
            "Wall seconds one job spent executing",
            buckets=EXECUTE_SECONDS_BUCKETS,
        )
        self._m_engine_fallbacks = reg.counter(
            "service_engine_fallbacks_total",
            "Mode simulations where the vectorized kernel declined "
            "and the reference interpreter ran instead",
        )
        self._m_prune_runs = reg.counter(
            "service_cache_prune_runs_total",
            "Completed cache-prune sweeps",
        )
        self._m_pruned_bytes = reg.counter(
            "service_cache_pruned_bytes_total",
            "Bytes reclaimed by cache pruning",
        )
        self._m_worker_crashes = reg.counter(
            "service_worker_crashes_total",
            "Broker worker tasks that died with an unexpected exception",
        )
        self._m_worker_restarts = reg.counter(
            "service_worker_restarts_total",
            "Crashed broker worker tasks restarted by the supervisor",
        )
        self._m_workers_alive = reg.gauge(
            "service_workers_alive", "Broker worker tasks currently running"
        )
        self._m_stream_subscribers = reg.gauge(
            "service_stream_subscribers",
            "Open SSE subscriptions across all job streams",
        )
        self._m_stream_events = reg.counter(
            "service_stream_events_total",
            "SSE events published to job streams, by event name",
        )
        self._m_stream_dropped = reg.counter(
            "service_stream_dropped_total",
            "SSE events dropped from slow subscriber queues",
        )
        self._m_stream_subscribers.set(0)
        for lane in LANES:
            self._m_depth.set(0, lane=lane)

    def _sync_depth(self) -> None:
        for lane in LANES:
            self._m_depth.set(len(self._lanes[lane]), lane=lane)
        self._m_inflight.set(self._inflight)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> dict:
        """Point-in-time broker summary (``GET /healthz`` payload)."""
        return {
            "draining": self._draining,
            "queued": {
                lane: len(self._lanes[lane]) for lane in LANES
            },
            "inflight": self._inflight,
            "jobs_tracked": len(self._jobs),
            "workers": len(self._workers),
            "workers_alive": self._workers_alive,
            "worker_crashes": self._worker_crashes,
            "worker_restarts": self._worker_restarts,
            "fleet": self.fleet.stats(),
        }

    async def start(self) -> None:
        """Restore any drain checkpoint and start the consumer tasks."""
        self._cond = asyncio.Condition()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        restored = self._restore_checkpoint()
        if restored:
            _log.info(
                "restored %d checkpointed job(s)",
                restored,
                extra={"event": "queue_restored", "jobs": restored},
            )
        roster = self.fleet.restore_registry()
        if roster:
            _log.info(
                "restored %d fleet worker(s) from the registry journal",
                roster,
                extra={"event": "fleet_restored", "workers": roster},
            )
        # Dispatch-only mode runs no local execution slots: every job
        # waits for a pull-worker lease.
        self._workers = (
            []
            if self.config.fleet
            else [
                asyncio.ensure_future(self._supervised_worker(slot))
                for slot in range(self.config.workers)
            ]
        )
        self._fleet_task = asyncio.ensure_future(self.fleet.reap_loop())
        if (
            self.config.prune_interval_s > 0
            and self.config.runner.cache_dir is not None
        ):
            self._prune_task = asyncio.ensure_future(self._prune_loop())

    async def drain(self) -> int:
        """Graceful shutdown: reject new work, finish in-flight jobs.

        Queued-but-unstarted jobs are checkpointed (and their waiters
        released with status ``checkpointed``).  Returns the number of
        checkpointed jobs; 0 means the next boot finds no journal.
        """
        if self._draining:
            return 0
        self._draining = True
        assert self._cond is not None
        # Remote leases first: their jobs rejoin the lanes (voluntary
        # release, no expiry penalty) and get checkpointed below.
        await self.fleet.release_all()
        checkpointed: "list[Job]" = []
        async with self._cond:
            for lane in LANES:
                queue = self._lanes[lane]
                while queue:
                    job = queue.popleft()
                    job.status = "checkpointed"
                    job.done_event.set()
                    self._m_jobs.inc(status="checkpointed")
                    self._publish_event(
                        job.job_id, "checkpointed", job.status_dict()
                    )
                    checkpointed.append(job)
            self._sync_depth()
            self._cond.notify_all()
        self._write_checkpoint(checkpointed)
        _log.info(
            "drain: %d in-flight, %d checkpointed",
            self._inflight,
            len(checkpointed),
            extra={
                "event": "drain_start",
                "inflight": self._inflight,
                "checkpointed": len(checkpointed),
            },
        )
        if self._workers:
            done, pending = await asyncio.wait(
                self._workers, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._prune_task is not None:
            self._prune_task.cancel()
            await asyncio.gather(self._prune_task, return_exceptions=True)
            self._prune_task = None
        if self._fleet_task is not None:
            self._fleet_task.cancel()
            await asyncio.gather(self._fleet_task, return_exceptions=True)
            self._fleet_task = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        _log.info(
            "drain complete",
            extra={"event": "drain_finish",
                   "checkpointed": len(checkpointed)},
        )
        return len(checkpointed)

    # ------------------------------------------------------------------
    # Drain checkpoint (PR 3 journal format)
    # ------------------------------------------------------------------

    def _write_checkpoint(self, jobs: "list[Job]") -> None:
        if self._checkpoint_path is None:
            return
        if not jobs:
            # A clean drain leaves no journal behind.
            try:
                self._checkpoint_path.unlink()
            except OSError:
                pass
            return
        self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._checkpoint_path, "w", encoding="utf-8") as handle:
            for job in jobs:
                handle.write(
                    json.dumps(
                        {
                            "spec": job.job_id,
                            "job_id": job.spec.job_id,
                            "priority": job.priority,
                            "request": job.spec.to_dict(),
                        }
                    )
                    + "\n"
                )

    def _restore_checkpoint(self) -> int:
        """Re-enqueue jobs a previous drain checkpointed; clear the file."""
        if self._checkpoint_path is None:
            return 0
        try:
            lines = self._checkpoint_path.read_text(
                encoding="utf-8"
            ).splitlines()
        except OSError:
            return 0
        restored = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                spec = ExperimentSpec.from_dict(entry["request"])
                priority = entry.get("priority", "batch")
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError, ReproError):
                continue  # torn or stale line: drop, don't crash boot
            if priority not in LANES:
                priority = "batch"
            job = Job(
                job_id=spec_key(spec, self.config.runner.cache_salt),
                spec=spec,
                priority=priority,
            )
            self._jobs[job.job_id] = job
            self._lanes[priority].append(job)
            self._m_jobs.inc(status="restored")
            restored += 1
        self._sync_depth()
        try:
            self._checkpoint_path.unlink()
        except OSError:
            pass
        return restored

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _bucket_for(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(
                self.config.rate_limit_rps,
                self.config.rate_limit_burst,
                clock=self._clock,
            )
            self._buckets[client] = bucket
            # Bound per-client state: forget the coldest buckets.
            while len(self._buckets) > 1024:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket

    def _active_count(self) -> int:
        return (
            sum(len(self._lanes[lane]) for lane in LANES)
            + self._inflight
            + self.fleet.leased_count
        )

    async def submit(
        self,
        spec: ExperimentSpec,
        priority: str = "interactive",
        client: str = "",
    ) -> "tuple[Job, str]":
        """Admit one spec; returns ``(job, outcome)``.

        ``outcome`` is one of ``"accepted"`` (queued), ``"coalesced"``
        (an identical job is already queued or running),
        ``"duplicate"`` (an identical job already finished in memory),
        or ``"cache_hit"`` (answered from the on-disk response store
        without queuing).  Raises an :class:`AdmissionError` subclass
        when the submission is rejected.
        """
        if priority not in LANES:
            raise ServiceError(
                f"unknown priority {priority!r}; choose from {LANES}"
            )
        if self._draining:
            self._m_rejected.inc(reason=DrainingError.reason)
            raise DrainingError(
                "service is draining; submit to another replica",
                retry_after_s=self.config.retry_after_s,
            )
        if self.config.rate_limit_rps > 0:
            bucket = self._bucket_for(client)
            if not bucket.try_acquire():
                self._m_rejected.inc(reason=RateLimitedError.reason)
                raise RateLimitedError(
                    f"client {client or '<anonymous>'} exceeded "
                    f"{self.config.rate_limit_rps:g} req/s "
                    f"(burst {self.config.rate_limit_burst})",
                    retry_after_s=max(
                        bucket.retry_after_s(), 0.05
                    ),
                )
        key = spec_key(spec, self.config.runner.cache_salt)
        existing = self._jobs.get(key)
        if existing is not None and not existing.finished:
            # Single-flight: ride the live job, whatever its phase.
            existing.coalesced += 1
            self._m_coalesced.inc()
            self._m_submissions.inc(outcome="coalesced")
            return existing, "coalesced"
        if existing is not None and existing.status == "done":
            self._m_submissions.inc(outcome="duplicate")
            return existing, "duplicate"
        # Cache short-circuit: a stored response means this exact spec
        # (same content, same code version) already ran to completion —
        # answer it at admission time, before the queue.
        if self._responses is not None:
            stored = self._responses.get(key)
            if isinstance(stored, dict) and stored.get("status") == "done":
                job = Job(
                    job_id=key,
                    spec=spec,
                    priority=priority,
                    status="done",
                    from_cache=True,
                    result_bytes=canonical_json(stored),
                )
                job.done_event.set()
                self._track_terminal(job)
                self._m_submissions.inc(outcome="cache_hit")
                return job, "cache_hit"
        if self._active_count() >= self.config.queue_capacity:
            self._m_rejected.inc(reason=QueueFullError.reason)
            raise QueueFullError(
                f"admission queue at capacity "
                f"({self.config.queue_capacity} jobs)",
                retry_after_s=self.config.retry_after_s,
            )
        job = Job(
            job_id=key,
            spec=spec,
            priority=priority,
            request_id=current_request_id() or "",
        )
        self._jobs[key] = job
        assert self._cond is not None, "JobBroker.start() was not awaited"
        async with self._cond:
            self._lanes[priority].append(job)
            self._sync_depth()
            self._cond.notify()
        self._m_submissions.inc(outcome="accepted")
        self._publish_event(key, "queued", job.status_dict())
        _log.info(
            "job accepted: %s (%s)",
            job.spec.job_id,
            priority,
            extra={
                "event": "job_accepted",
                "spec_key": key,
                "job_id": job.spec.job_id,
                "priority": priority,
            },
        )
        return job, "accepted"

    def get(self, job_id: str) -> Optional[Job]:
        """In-memory job lookup (live and recently terminal jobs)."""
        return self._jobs.get(job_id)

    def lookup_response(self, job_id: str) -> Optional[bytes]:
        """Canonical response bytes for a job, wherever they live.

        Falls back to the on-disk response store for jobs evicted from
        memory (or completed by an earlier server process), preserving
        bit-identity: the store holds the same payload the canonical
        serializer produced.
        """
        job = self._jobs.get(job_id)
        if job is not None and job.result_bytes is not None:
            return job.result_bytes
        if self._responses is not None:
            stored = self._responses.get(job_id)
            if isinstance(stored, dict):
                return canonical_json(stored)
        return None

    # ------------------------------------------------------------------
    # Event streaming (SSE fan-out per job)
    # ------------------------------------------------------------------

    def _stream_for(self, job_id: str) -> _JobStream:
        stream = self._streams.get(job_id)
        if stream is None:
            stream = _JobStream(
                ring=deque(maxlen=self.config.stream_ring_size)
            )
            self._streams[job_id] = stream
        return stream

    def _publish_event(self, job_id: str, event: str, data: dict) -> None:
        """Append one event to the job's stream and fan it out.

        Runs on the event loop only (worker threads cross over via
        ``call_soon_threadsafe``).  Slow subscribers lose their oldest
        undelivered events (drop-oldest, counted) instead of blocking
        the broker; the replay ring still covers reconnects.
        """
        stream = self._stream_for(job_id)
        stream.next_id += 1
        entry = (stream.next_id, event, data)
        stream.ring.append(entry)
        self._m_stream_events.inc(event=event)
        if event in TERMINAL_EVENTS:
            stream.closed = True
        for queue in stream.subscribers:
            while True:
                try:
                    queue.put_nowait(entry)
                    break
                except asyncio.QueueFull:
                    try:
                        queue.get_nowait()
                        self._m_stream_dropped.inc()
                    except asyncio.QueueEmpty:  # pragma: no cover
                        break

    def subscribe(
        self, job_id: str, last_event_id: Optional[int] = None
    ):
        """Open one SSE subscription; ``None`` if the job is unknown.

        Returns ``(replay, queue)``: ``replay`` is the list of ring
        events with id greater than ``last_event_id`` (all of them for
        a fresh subscriber), after which new events arrive on
        ``queue``.  Jobs that finished before any stream existed (cache
        hits, jobs restored from the response store) get a synthesized
        terminal event so late watchers still see an end-of-stream
        frame.  Pair every call with :meth:`unsubscribe`.
        """
        stream = self._streams.get(job_id)
        if stream is None:
            job = self._jobs.get(job_id)
            if job is not None:
                stream = self._stream_for(job_id)
                if job.finished:
                    self._publish_event(
                        job_id,
                        "failed" if job.status == "failed" else job.status,
                        job.status_dict(),
                    )
            elif self.lookup_response(job_id) is not None:
                stream = self._stream_for(job_id)
                self._publish_event(
                    job_id,
                    "done",
                    {"job_id": job_id, "status": "done",
                     "from_cache": True},
                )
            else:
                return None
        queue: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.config.stream_queue_size
        )
        stream.subscribers.append(queue)
        self._stream_subscribers += 1
        self._m_stream_subscribers.set(self._stream_subscribers)
        replay = [
            entry
            for entry in stream.ring
            if last_event_id is None or entry[0] > last_event_id
        ]
        return replay, queue

    def unsubscribe(self, job_id: str, queue: "asyncio.Queue") -> None:
        stream = self._streams.get(job_id)
        if stream is not None:
            try:
                stream.subscribers.remove(queue)
            except ValueError:
                return  # already removed (double unsubscribe)
        self._stream_subscribers = max(0, self._stream_subscribers - 1)
        self._m_stream_subscribers.set(self._stream_subscribers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def _next_job(self) -> Optional[Job]:
        assert self._cond is not None
        async with self._cond:
            while True:
                for lane in LANES:
                    if self._lanes[lane]:
                        job = self._lanes[lane].popleft()
                        self._inflight += 1
                        self._sync_depth()
                        return job
                if self._draining:
                    return None
                await self._cond.wait()

    async def _worker(self) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                return
            try:
                await self._execute_job(job)
            finally:
                self._inflight -= 1
                self._sync_depth()

    async def _supervised_worker(self, slot: int) -> None:
        """One worker slot, restarted after unexpected crashes.

        :meth:`_execute_job` already absorbs simulation failures into
        the job's terminal state, so an exception escaping
        :meth:`_worker` is a broker bug — but one dead slot must not
        silently halve service throughput forever.  The supervisor
        restarts the slot up to ``max_worker_restarts`` times, then
        abandons it; when every slot is dead, ``workers_alive`` hits 0
        and ``/readyz`` flips to 503.
        """
        restarts = 0
        self._workers_alive += 1
        self._m_workers_alive.set(self._workers_alive)
        try:
            while True:
                try:
                    await self._worker()
                    return  # clean exit: the broker is draining
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    self._worker_crashes += 1
                    self._m_worker_crashes.inc()
                    if restarts >= self.config.max_worker_restarts:
                        _log.error(
                            "worker slot %d abandoned after %d "
                            "restart(s): %s",
                            slot,
                            restarts,
                            error,
                            extra={
                                "event": "service_worker_abandoned",
                                "slot": slot,
                                "restarts": restarts,
                                "error": f"{type(error).__name__}: {error}",
                            },
                        )
                        return
                    restarts += 1
                    self._worker_restarts += 1
                    self._m_worker_restarts.inc()
                    _log.warning(
                        "worker slot %d crashed (%s); restarting "
                        "(%d/%d)",
                        slot,
                        error,
                        restarts,
                        self.config.max_worker_restarts,
                        extra={
                            "event": "service_worker_restarted",
                            "slot": slot,
                            "restarts": restarts,
                            "error": f"{type(error).__name__}: {error}",
                        },
                    )
        finally:
            self._workers_alive -= 1
            self._m_workers_alive.set(self._workers_alive)

    async def _execute_job(self, job: Job) -> None:
        job.status = "running"
        loop = asyncio.get_running_loop()
        self._publish_event(job.job_id, "running", job.status_dict())
        call = functools.partial(
            self._execute, job.spec, self.config.runner
        )
        job_id = job.job_id
        recorder = None
        if (
            self._execute_takes_recorder
            and self.config.stream_spans > 0
        ):
            from repro.obs.timeline import SpanStream

            recorder = SpanStream()
            call = functools.partial(call, recorder=recorder)
        if (
            self._execute_takes_publisher
            and self.config.stream_progress_events > 0
        ):

            def _frame(snapshot) -> None:
                # Executor thread -> event loop: progress frames cross
                # via call_soon_threadsafe; a loop already shut down
                # just drops the tail frames.
                try:
                    loop.call_soon_threadsafe(
                        self._publish_event, job_id, "progress",
                        snapshot.to_dict(),
                    )
                    if recorder is not None:
                        loop.call_soon_threadsafe(
                            self._publish_spans, job_id, recorder
                        )
                except RuntimeError:
                    pass

            call = functools.partial(
                call,
                publisher=CallbackPublisher(
                    _frame,
                    interval=self.config.stream_progress_events,
                ),
            )
        started = self._clock()
        token = (
            set_request_id(job.request_id) if job.request_id else None
        )
        try:
            payload = await loop.run_in_executor(self._pool, call)
        except ReproError as error:
            self._fail(job, str(error))
            return
        except Exception as error:  # worker bug ≠ broker crash
            self._fail(job, f"{type(error).__name__}: {error}")
            return
        finally:
            if recorder is not None:
                # Flush the tail spans before any terminal event.
                self._publish_spans(job_id, recorder, flush=True)
            if token is not None:
                reset_request_id(token)
        self._finish_done(
            job,
            payload["trace_hash"],
            payload["modes"],
            execute_seconds=self._clock() - started,
        )

    def _publish_spans(
        self, job_id: str, recorder, flush: bool = False
    ) -> None:
        """Drain buffered timeline spans into ``span`` SSE events.

        Runs on the event loop.  Each event carries at most
        ``stream_spans`` spans; ``flush`` empties the whole buffer in
        bounded batches (end of execution), otherwise one batch per
        progress frame keeps the stream paced.
        """
        limit = self.config.stream_spans
        while True:
            batch = recorder.drain(limit)
            if not batch:
                return
            self._publish_event(
                job_id,
                "span",
                {"job_id": job_id, "spans": batch, "count": len(batch)},
            )
            if not flush:
                return

    def _finish_done(
        self,
        job: Job,
        trace_hash: str,
        modes: dict,
        execute_seconds: float = 0.0,
    ) -> None:
        """Terminal bookkeeping for a successful execution.

        One serializer for both execution tiers: the local executor
        path and fleet ``complete`` uploads land here, so response
        bytes are canonical — and therefore bit-identical — no matter
        where the simulation ran.
        """
        job.execute_seconds = execute_seconds
        self._m_execute.observe(job.execute_seconds)
        fallbacks = sum(
            1 for entry in modes.values() if entry.get("fallback")
        )
        if fallbacks:
            self._m_engine_fallbacks.inc(fallbacks)
        body = {
            "job_id": job.job_id,
            "spec_key": job.job_id,
            "status": "done",
            "workload": job.spec.workload,
            "scale": job.spec.scale,
            "trace_hash": trace_hash,
            "results": {
                label: entry["payload"]
                for label, entry in modes.items()
            },
            "cached_modes": {
                label: bool(entry.get("cached"))
                for label, entry in modes.items()
            },
        }
        job.result_bytes = canonical_json(body)
        job.status = "done"
        job.done_event.set()
        if self._responses is not None:
            self._responses.put(job.job_id, body)
        self._m_jobs.inc(status="done")
        self._track_terminal(job)
        self._publish_event(job.job_id, "done", job.status_dict())
        _log.info(
            "job done: %s (%.2fs, coalesced %d)",
            job.spec.job_id,
            job.execute_seconds,
            job.coalesced,
            extra={
                "event": "job_done",
                "spec_key": job.job_id,
                "job_id": job.spec.job_id,
                "execute_seconds": job.execute_seconds,
                "coalesced": job.coalesced,
            },
        )

    def _remove_from_lanes(self, job: Job) -> None:
        """Pull a job out of its lane, wherever it sits (idempotent).

        Used when a result arrives for a job that was requeued after a
        lease expiry: accepting the late upload must also stop the job
        from executing a second time.
        """
        for lane in LANES:
            try:
                self._lanes[lane].remove(job)
            except ValueError:
                continue
            self._sync_depth()
            return

    def _fail(self, job: Job, message: str) -> None:
        job.status = "failed"
        job.error = message
        job.done_event.set()
        self._m_jobs.inc(status="failed")
        self._track_terminal(job)
        self._publish_event(job.job_id, "failed", job.status_dict())
        _log.error(
            "job failed: %s — %s",
            job.spec.job_id,
            message,
            extra={
                "event": "job_failed",
                "spec_key": job.job_id,
                "job_id": job.spec.job_id,
                "error": message,
            },
        )

    def _track_terminal(self, job: Job) -> None:
        """Retain terminal jobs in memory, bounded by config.

        Evicted done jobs remain answerable through the response
        store; evicted failed jobs simply age out (a resubmission
        re-executes them, which is the desired retry semantics).
        """
        self._jobs[job.job_id] = job
        self._terminal.append(job.job_id)
        while len(self._terminal) > self.config.completed_jobs_kept:
            old_id = self._terminal.popleft()
            old = self._jobs.get(old_id)
            if old is not None and old.finished and old is not job:
                del self._jobs[old_id]
                self._streams.pop(old_id, None)

    # ------------------------------------------------------------------
    # Cache pruning timer
    # ------------------------------------------------------------------

    def prune_caches(self) -> dict:
        """One pruning sweep over the result cache + response store."""
        budget = self.config.max_cache_bytes
        freed = 0
        removed = 0
        caches: "list[ResultCache]" = []
        if self.config.runner.cache_dir is not None:
            caches.append(ResultCache(self.config.runner.cache_dir))
        if self._responses is not None:
            caches.append(self._responses)
        for cache in caches:
            outcome = cache.prune(budget)
            freed += outcome["freed_bytes"]
            removed += outcome["removed"]
        self._m_prune_runs.inc()
        self._m_pruned_bytes.inc(freed)
        if removed:
            _log.info(
                "cache prune: removed %d object(s), freed %d byte(s)",
                removed,
                freed,
                extra={
                    "event": "cache_pruned",
                    "removed": removed,
                    "freed_bytes": freed,
                },
            )
        return {"removed": removed, "freed_bytes": freed}

    async def _prune_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.prune_interval_s)
            try:
                await loop.run_in_executor(None, self.prune_caches)
            except OSError:  # unwritable cache: try again next tick
                continue


__all__ = [
    "AdmissionError",
    "DrainingError",
    "EXECUTE_SECONDS_BUCKETS",
    "Job",
    "JobBroker",
    "LANES",
    "QueueFullError",
    "RateLimitedError",
    "TERMINAL_EVENTS",
    "TokenBucket",
    "canonical_json",
]
