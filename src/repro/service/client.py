"""Typed synchronous client for the simulation service.

Zero-dependency (stdlib :mod:`http.client`) so any consumer that can
import :mod:`repro` can talk to ``repro serve``::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8477", client_id="ci")
    ticket = client.submit(workload="BFS", scale="tiny")
    status = client.wait(ticket.job_id, timeout_s=120)
    print(status.results["GraphPIM"]["cycles"])

Admission rejections surface as typed exceptions carrying the server's
``Retry-After`` hint (:class:`ClientBackpressureError`), so callers can
implement polite retry loops; :meth:`ServiceClient.submit_and_wait`
implements one.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ServiceError
from repro.runner.spec import ExperimentSpec


class ClientBackpressureError(ServiceError):
    """The server rejected the submission (429/503) with a retry hint."""

    def __init__(self, message: str, reason: str, retry_after_s: float):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class JobFailedError(ServiceError):
    """The submitted job reached the ``failed`` terminal state."""


@dataclass(frozen=True)
class StreamEvent:
    """One Server-Sent Event from ``GET /v1/jobs/{id}/events``.

    ``event_id`` is the server's monotonically increasing per-job id
    (feed the last one seen back as ``last_event_id`` to resume after
    a disconnect).  ``event`` is the lifecycle name (``queued``,
    ``running``, ``progress``, ``done``, ``failed``,
    ``checkpointed``); ``data`` is the decoded JSON payload — a job
    status dict, or a ProgressSnapshot dict for ``progress`` frames.
    """

    event_id: int
    event: str
    data: dict

    @property
    def terminal(self) -> bool:
        return self.event in ("done", "failed", "checkpointed")


@dataclass(frozen=True)
class SubmitTicket:
    """What ``POST /v1/jobs`` answered."""

    job_id: str
    status: str
    outcome: str  # accepted | coalesced | duplicate | cache_hit

    @property
    def done(self) -> bool:
        return self.status == "done"


@dataclass(frozen=True)
class JobStatus:
    """One ``GET /v1/jobs/{id}`` response, raw bytes retained.

    ``raw`` is the exact body the server sent — for a done job these
    bytes are canonical and bit-identical across every client of the
    same spec, which tests assert directly.
    """

    job_id: str
    status: str
    raw: bytes
    body: dict = field(repr=False, default_factory=dict)

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def results(self) -> "dict[str, dict]":
        """Mode label -> versioned SimResult payload (done jobs)."""
        return self.body.get("results", {})

    @property
    def error(self) -> str:
        return self.body.get("error", "")


class ServiceClient:
    """Small blocking client; one HTTP connection per call."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8477",
        timeout_s: float = 30.0,
        client_id: str = "",
    ):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(
                f"unsupported scheme {parsed.scheme!r} (http only)"
            )
        netloc = parsed.netloc or parsed.path
        if not netloc:
            raise ServiceError(f"cannot parse base url {base_url!r}")
        self._host = netloc.split(":")[0]
        self._port = (
            int(netloc.split(":")[1]) if ":" in netloc else 80
        )
        self.timeout_s = timeout_s
        self.client_id = client_id

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        request_id: str = "",
    ) -> "tuple[int, dict[str, str], bytes]":
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Connection": "close"}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if request_id:
            # Correlation id: the server echoes it, binds its logs to
            # it, and carries it with the job through lease/complete.
            headers["X-Request-Id"] = request_id
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"{method} {path} failed against "
                f"{self._host}:{self._port}: {error}"
            ) from error
        finally:
            conn.close()

    @staticmethod
    def _json(data: bytes) -> dict:
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"server sent unparseable JSON: {error}"
            ) from error
        if not isinstance(parsed, dict):
            raise ServiceError("server sent a non-object JSON body")
        return parsed

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def submit(
        self,
        workload: Optional[str] = None,
        scale: Optional[str] = None,
        modes: Optional["list[str]"] = None,
        threads: Optional[int] = None,
        params: Optional[dict] = None,
        faults: Optional[str] = None,
        spec: Optional[ExperimentSpec] = None,
        priority: str = "interactive",
        request_id: str = "",
    ) -> SubmitTicket:
        """Submit one experiment; returns the admission ticket.

        Either pass a full ``spec`` (an
        :class:`~repro.runner.spec.ExperimentSpec`) or the shorthand
        fields.  Raises :class:`ClientBackpressureError` on 429/503
        and :class:`~repro.common.errors.ServiceError` on other
        protocol failures.
        """
        body: "dict[str, Any]" = {"priority": priority}
        if self.client_id:
            body["client"] = self.client_id
        if spec is not None:
            body["spec"] = spec.to_dict()
        else:
            if workload is None:
                raise ServiceError("submit needs a workload or a spec")
            body["workload"] = workload
            if scale is not None:
                body["scale"] = scale
            if modes is not None:
                body["modes"] = list(modes)
            if threads is not None:
                body["threads"] = threads
            if params:
                body["params"] = params
            if faults:
                body["faults"] = faults
        code, headers, data = self._request(
            "POST", "/v1/jobs", body, request_id=request_id
        )
        parsed = self._json(data)
        if code in (429, 503):
            raise ClientBackpressureError(
                parsed.get("error", f"rejected with HTTP {code}"),
                reason=parsed.get("reason", "rejected"),
                retry_after_s=float(
                    parsed.get(
                        "retry_after_s",
                        headers.get("retry-after", 1.0),
                    )
                ),
            )
        if code not in (200, 202):
            detail = parsed.get("error") or repr(data[:200])
            raise ServiceError(
                f"submit rejected with HTTP {code}: {detail}"
            )
        return SubmitTicket(
            job_id=parsed["job_id"],
            status=parsed["status"],
            outcome=parsed.get("outcome", ""),
        )

    def status(self, job_id: str) -> JobStatus:
        """Current state of one job (raw response bytes retained)."""
        code, _headers, data = self._request(
            "GET", f"/v1/jobs/{urllib.parse.quote(job_id)}"
        )
        if code == 404:
            raise ServiceError(f"unknown job {job_id!r}")
        if code != 200:
            raise ServiceError(
                f"status failed with HTTP {code}: {data[:200]!r}"
            )
        parsed = self._json(data)
        return JobStatus(
            job_id=parsed.get("job_id", job_id),
            status=parsed.get("status", "unknown"),
            raw=data,
            body=parsed,
        )

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
    ) -> JobStatus:
        """Poll until the job is terminal; raise on failure/timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status.done:
                return status
            if status.failed:
                raise JobFailedError(
                    f"job {job_id} failed: {status.error}"
                )
            if status.status == "checkpointed":
                raise ServiceError(
                    f"job {job_id} was checkpointed by a drain; "
                    f"resubmit after the service restarts"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} not finished after {timeout_s:g}s "
                    f"(last status: {status.status})"
                )
            time.sleep(poll_s)

    def events(
        self,
        job_id: str,
        last_event_id: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ):
        """Yield :class:`StreamEvent` frames from the SSE endpoint.

        Holds one connection open and parses the ``text/event-stream``
        wire format incrementally (``id:`` / ``event:`` / ``data:``
        fields, blank-line dispatch, ``:`` comment heartbeats are
        skipped).  The generator ends when the server closes the
        stream — after a terminal event, or on drain.  Pass the last
        ``event_id`` you processed as ``last_event_id`` to resume a
        dropped stream without missing (ring-retained) events.

        ``timeout_s`` bounds each socket read; the server's periodic
        heartbeats keep a healthy-but-quiet stream under any bound
        larger than ``stream_heartbeat_s``.
        """
        headers = {
            "Accept": "text/event-stream",
            "Connection": "close",
        }
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        conn = http.client.HTTPConnection(
            self._host,
            self._port,
            timeout=(
                timeout_s if timeout_s is not None else self.timeout_s
            ),
        )
        path = f"/v1/jobs/{urllib.parse.quote(job_id)}/events"
        try:
            try:
                conn.request("GET", path, headers=headers)
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as error:
                raise ServiceError(
                    f"GET {path} failed against "
                    f"{self._host}:{self._port}: {error}"
                ) from error
            if response.status == 404:
                raise ServiceError(f"unknown job {job_id!r}")
            if response.status != 200:
                raise ServiceError(
                    f"events answered HTTP {response.status}"
                )
            event_id = 0
            event_name = "message"
            data_lines: "list[str]" = []
            while True:
                try:
                    raw = response.readline()
                except (OSError, http.client.HTTPException) as error:
                    raise ServiceError(
                        f"event stream for {job_id} broke: {error}"
                    ) from error
                if not raw:
                    return  # server closed the stream
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
                if not line:
                    if data_lines:
                        try:
                            data = json.loads("\n".join(data_lines))
                        except json.JSONDecodeError:
                            data = {}
                        if not isinstance(data, dict):
                            data = {}
                        yield StreamEvent(
                            event_id=event_id,
                            event=event_name,
                            data=data,
                        )
                    event_name = "message"
                    data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # heartbeat comment
                name, _, value = line.partition(":")
                if value.startswith(" "):
                    value = value[1:]
                if name == "id":
                    try:
                        event_id = int(value)
                    except ValueError:
                        pass
                elif name == "event":
                    event_name = value
                elif name == "data":
                    data_lines.append(value)
        finally:
            conn.close()

    def submit_and_wait(
        self,
        timeout_s: float = 300.0,
        max_retries: int = 8,
        **submit_kwargs,
    ) -> JobStatus:
        """Submit with polite backpressure retries, then wait."""
        deadline = time.monotonic() + timeout_s
        attempts = 0
        while True:
            try:
                ticket = self.submit(**submit_kwargs)
                break
            except ClientBackpressureError as error:
                attempts += 1
                if (
                    attempts > max_retries
                    or time.monotonic() >= deadline
                ):
                    raise
                time.sleep(min(error.retry_after_s, 5.0))
        return self.wait(
            ticket.job_id,
            timeout_s=max(deadline - time.monotonic(), 0.1),
        )

    # ------------------------------------------------------------------
    # Fleet protocol (used by the ``repro worker`` daemon)
    # ------------------------------------------------------------------

    def _fleet_post(
        self, action: str, body: dict, request_id: str = ""
    ) -> dict:
        code, _headers, data = self._request(
            "POST", f"/v1/fleet/{action}", body, request_id=request_id
        )
        parsed = self._json(data)
        if code == 503:
            raise ClientBackpressureError(
                parsed.get("error", "service is draining"),
                reason=parsed.get("reason", "draining"),
                retry_after_s=float(parsed.get("retry_after_s", 1.0)),
            )
        if code != 200:
            raise ServiceError(
                f"fleet {action} answered HTTP {code}: "
                f"{parsed.get('error', '')}"
            )
        return parsed

    def fleet_register(
        self, worker_id: str, capacity: int = 1
    ) -> dict:
        """Join the fleet; returns lease TTL and heartbeat cadence."""
        return self._fleet_post(
            "register",
            {"worker_id": worker_id, "capacity": capacity},
        )

    def fleet_lease(self, worker_id: str, max_jobs: int = 1) -> dict:
        """Pull up to ``max_jobs`` queued jobs from this shard."""
        return self._fleet_post(
            "lease", {"worker_id": worker_id, "max_jobs": max_jobs}
        )

    def fleet_heartbeat(
        self,
        worker_id: str,
        jobs: "list[str]",
        frames: Optional["list[dict]"] = None,
        spans: Optional["list[dict]"] = None,
    ) -> dict:
        """Renew leases; piggyback progress frames and span batches."""
        body: "dict[str, Any]" = {
            "worker_id": worker_id,
            "jobs": list(jobs),
        }
        if frames:
            body["frames"] = frames
        if spans:
            body["spans"] = spans
        return self._fleet_post("heartbeat", body)

    def fleet_complete(
        self,
        worker_id: str,
        job_id: str,
        body: dict,
        request_id: str = "",
    ) -> dict:
        """Upload one result (idempotent by ``spec_key``)."""
        payload = dict(body)
        payload["worker_id"] = worker_id
        payload["job_id"] = job_id
        return self._fleet_post(
            "complete", payload, request_id=request_id
        )

    def fleet_deregister(self, worker_id: str) -> dict:
        """Graceful leave; the broker requeues any held leases."""
        return self._fleet_post(
            "deregister", {"worker_id": worker_id}
        )

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        code, _headers, data = self._request("GET", "/healthz")
        if code != 200:
            raise ServiceError(f"healthz answered HTTP {code}")
        return self._json(data)

    def ready(self) -> bool:
        """True when the server accepts new work (not draining)."""
        code, _headers, _data = self._request("GET", "/readyz")
        return code == 200

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /metrics``."""
        code, _headers, data = self._request("GET", "/metrics")
        if code != 200:
            raise ServiceError(f"metrics answered HTTP {code}")
        return data.decode("utf-8")


__all__ = [
    "ClientBackpressureError",
    "JobFailedError",
    "JobStatus",
    "ServiceClient",
    "StreamEvent",
    "SubmitTicket",
]
