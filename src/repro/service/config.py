"""Service configuration.

:class:`ServiceConfig` carries everything ``repro serve`` needs:
network binding, broker sizing (worker slots, queue capacity), the
admission-control policy (per-client token-bucket rate limiting,
``Retry-After`` hints), cache-pruning cadence, and the
:class:`~repro.runner.spec.RunnerConfig` the broker executes specs
under.

None of these settings ever enter
:class:`~repro.sim.config.SystemConfig` — exactly like the obs layer,
service deployment knobs are outside all three cache-key factors
(trace, config, code version), so moving a cache between a CLI run and
a server, or resizing the server, can never churn cache fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.runner.spec import RunnerConfig

#: Default TCP port (unassigned range; "GPIM" on a phone keypad is taken).
DEFAULT_PORT = 8477

#: Filename of the drain checkpoint under the cache root (PR 3 journal
#: format: one JSON object per line, torn-line tolerant).
QUEUE_CHECKPOINT_FILENAME = "service_queue.jsonl"


@dataclass(frozen=True)
class ServiceConfig:
    """How one ``repro serve`` process behaves.

    Parameters
    ----------
    host / port:
        TCP binding; ``port=0`` binds an ephemeral port (the server
        reports the real one — CI smoke tests use this).
    workers:
        Concurrent simulation slots: the broker runs this many asyncio
        consumers, each executing specs in a thread off the event loop.
    queue_capacity:
        Bound on *admitted but not yet finished* jobs across both
        priority lanes.  Submissions beyond it are rejected with HTTP
        429 and a ``Retry-After`` hint — queue memory is bounded no
        matter how fast clients submit.
    rate_limit_rps / rate_limit_burst:
        Per-client token bucket: sustained requests/second and burst
        size.  ``rate_limit_rps=0`` disables rate limiting.  Clients
        identify themselves with the ``X-Client-Id`` header (or the
        ``client`` field of the submit body); anonymous callers share
        one bucket.
    retry_after_s:
        ``Retry-After`` hint attached to backpressure rejections.
    drain_timeout_s:
        Hard cap on waiting for in-flight jobs during graceful drain;
        jobs still running after it are abandoned (their specs are NOT
        checkpointed — they were in flight, not queued).
    prune_interval_s / max_cache_mb:
        When ``prune_interval_s > 0`` the service prunes the result
        cache (and its own response store) to ``max_cache_mb`` on this
        cadence via :meth:`~repro.runner.cache.ResultCache.prune`, so a
        long-lived server cannot fill the disk.
    completed_jobs_kept:
        Terminal jobs retained in memory for ``GET /v1/jobs/{id}``;
        older ones are answered from the on-disk response store.
    max_worker_restarts:
        Times each broker worker slot may be restarted after an
        unexpected crash before that slot is abandoned.  When every
        slot is dead the service keeps answering status queries but
        ``/readyz`` reports 503 so load balancers route elsewhere.
    runner:
        Execution settings for each spec (cache dir, strictness,
        salt).  The broker runs one spec at a time per worker slot, so
        the runner's own pool/parallel settings are not used here.
    stream_ring_size:
        Per-job replay ring for the SSE endpoint
        (``GET /v1/jobs/{id}/events``): the last N events are kept so a
        reconnecting client can resume from ``Last-Event-ID``.  Events
        older than the ring are gone — the client falls back to the
        terminal status endpoint.
    stream_queue_size:
        Per-subscriber delivery queue bound.  A subscriber that cannot
        keep up has its *oldest* undelivered events dropped (counted in
        ``service_stream_dropped_total``) rather than stalling the
        broker or growing memory without bound.
    stream_heartbeat_s:
        Idle cadence of SSE ``: heartbeat`` comment lines, keeping
        proxies and clients from timing out a quiet stream.
    stream_progress_events:
        Publish cadence (retired simulation events) for jobs executed
        by this service; overrides ``runner.progress_interval_events``
        for service executions.  0 disables live progress frames —
        lifecycle events (queued/running/done/failed) still stream.
        Observability only: never part of cache identity.
    stream_spans:
        Bound on timeline spans piggybacked per ``span`` SSE event
        (``GET /v1/jobs/{id}/events``).  0 (the default) disables span
        streaming entirely.  Enabling it attaches a live recorder to
        simulated modes, which routes them through the per-event
        reference interpreter — results stay bit-identical by the
        engine-equivalence contract, and like every obs knob this never
        enters cache identity.
    fleet:
        Dispatch-only mode (``repro serve --fleet``): the broker runs
        no local execution slots; every admitted job waits for a
        ``repro worker`` pull-worker to lease it.  ``/readyz`` answers
        503 until at least one registered worker has a fresh heartbeat.
    fleet_lease_ttl_s:
        Lease validity window.  A worker must renew (heartbeat) within
        it or the job is requeued for redispatch, exactly like the
        PR 8 worker-crash path.
    fleet_lease_jobs:
        Server-side cap on jobs handed out per ``/v1/fleet/lease``
        call, whatever batch size the worker asks for.
    fleet_worker_timeout_s:
        Registered-worker liveness horizon: a worker silent for longer
        is expired from the hash ring (its leases requeue, its shard
        rebalances deterministically onto the survivors).
    fleet_ring_vnodes / fleet_ring_seed:
        Virtual-node count and placement seed of the ``spec_key``
        consistent-hash ring.  Topology-only: sharding never touches
        ``spec_key`` or cache fingerprints.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    queue_capacity: int = 64
    rate_limit_rps: float = 0.0
    rate_limit_burst: int = 16
    retry_after_s: float = 1.0
    drain_timeout_s: float = 30.0
    prune_interval_s: float = 0.0
    max_cache_mb: float = 512.0
    completed_jobs_kept: int = 512
    max_worker_restarts: int = 3
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    stream_ring_size: int = 256
    stream_queue_size: int = 64
    stream_heartbeat_s: float = 10.0
    stream_progress_events: int = 20_000
    stream_spans: int = 0
    fleet: bool = False
    fleet_lease_ttl_s: float = 15.0
    fleet_lease_jobs: int = 4
    fleet_worker_timeout_s: float = 45.0
    fleet_ring_vnodes: int = 64
    fleet_ring_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("service workers must be >= 1")
        if self.queue_capacity < 1:
            raise ConfigError("service queue_capacity must be >= 1")
        if self.rate_limit_rps < 0:
            raise ConfigError("service rate_limit_rps must be >= 0")
        if self.rate_limit_burst < 1:
            raise ConfigError("service rate_limit_burst must be >= 1")
        if self.max_cache_mb < 0:
            raise ConfigError("service max_cache_mb must be >= 0")
        if self.completed_jobs_kept < 1:
            raise ConfigError("service completed_jobs_kept must be >= 1")
        if self.max_worker_restarts < 0:
            raise ConfigError("service max_worker_restarts must be >= 0")
        if self.stream_ring_size < 1:
            raise ConfigError("service stream_ring_size must be >= 1")
        if self.stream_queue_size < 1:
            raise ConfigError("service stream_queue_size must be >= 1")
        if self.stream_heartbeat_s <= 0:
            raise ConfigError("service stream_heartbeat_s must be > 0")
        if self.stream_progress_events < 0:
            raise ConfigError(
                "service stream_progress_events must be >= 0"
            )
        if self.stream_spans < 0:
            raise ConfigError("service stream_spans must be >= 0")
        if self.fleet_lease_ttl_s <= 0:
            raise ConfigError("service fleet_lease_ttl_s must be > 0")
        if self.fleet_lease_jobs < 1:
            raise ConfigError("service fleet_lease_jobs must be >= 1")
        if self.fleet_worker_timeout_s <= 0:
            raise ConfigError(
                "service fleet_worker_timeout_s must be > 0"
            )
        if self.fleet_ring_vnodes < 1:
            raise ConfigError("service fleet_ring_vnodes must be >= 1")

    @property
    def max_cache_bytes(self) -> int:
        return int(self.max_cache_mb * 1024 * 1024)
