"""Zero-dependency asyncio HTTP/JSON frontend for the job broker.

``repro serve`` binds :class:`ServiceServer` — a deliberately small
HTTP/1.1 implementation on ``asyncio.start_server`` (one request per
connection, ``Connection: close``) exposing:

- ``POST /v1/jobs`` — submit an experiment (full
  :meth:`~repro.runner.spec.ExperimentSpec.to_dict` form or the
  shorthand ``{"workload": "BFS", "scale": "tiny", "modes":
  ["baseline", "graphpim"]}``); 202 + job id, 200 when answered
  immediately, 429/503 + ``Retry-After`` when admission rejects;
- ``GET /v1/jobs/{id}`` — job status, or the canonical result body
  once done (bit-identical for every caller of the same spec);
- ``GET /v1/jobs/{id}/events`` — Server-Sent Events stream of the
  job's lifecycle (``queued`` → ``running`` → ``progress``* →
  ``done``/``failed``) with ``Last-Event-ID`` replay from a bounded
  per-job ring and ``: heartbeat`` comments on idle streams;
- ``POST /v1/fleet/{register,lease,heartbeat,complete,deregister}`` —
  the pull-worker protocol (PR 10): workers lease job batches from
  their ``spec_key`` shard, renew under a TTL (piggybacking progress
  frames and span batches into the SSE streams), and upload canonical
  results idempotently;
- ``GET /healthz`` (liveness + broker stats), ``GET /readyz``
  (503 while draining, or when nothing can execute — every local
  worker slot crashed past its restart budget *and* no fleet worker
  has a fresh heartbeat — so load balancers stop routing here first);
- ``GET /metrics`` — the service :class:`MetricsRegistry` rendered in
  Prometheus text format.

Every request gets an ``X-Request-Id`` echoed in the response and
bound via :func:`repro.obs.logs.request_id_context`, so all log lines
a request produced — HTTP layer, broker, runner — correlate on one
``request_id`` field.  Callers may supply their own via the
``X-Request-Id`` header; the id a submission carried travels with the
job through lease and complete, so worker-side log lines correlate
with the original submit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import uuid
from typing import Awaitable, Callable, Optional

from repro.common.errors import ConfigError, ReproError, ServiceError
from repro.obs.logs import get_logger, request_id_context
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.runner.spec import ExperimentSpec
from repro.service.broker import (
    AdmissionError,
    DrainingError,
    JobBroker,
    TERMINAL_EVENTS,
)
from repro.service.config import ServiceConfig
from repro.sim.config import SystemConfig

_log = get_logger("service.http")

#: Largest accepted request body (a full ExperimentSpec is ~2 KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Request-latency histogram bounds in seconds (admission and polls
#: are sub-millisecond; only misconfigured handlers reach the tail).
REQUEST_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0,
)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MODE_CTORS = {
    "baseline": SystemConfig.baseline,
    "upei": SystemConfig.upei,
    "graphpim": SystemConfig.graphpim,
}

#: Characters allowed in a caller-supplied ``X-Request-Id`` (anything
#: else falls back to a generated id — header values land in response
#: headers and log lines, so they are strictly whitelisted).
_REQUEST_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def sanitize_request_id(raw: str) -> str:
    """A caller-supplied request id, or ``""`` when unusable."""
    if not raw or len(raw) > 64:
        return ""
    if not all(ch in _REQUEST_ID_SAFE for ch in raw):
        return ""
    return raw


def spec_from_request(body: dict) -> ExperimentSpec:
    """Build the spec a ``POST /v1/jobs`` body describes.

    Two forms are accepted: the full wire format under ``"spec"``
    (exactly :meth:`ExperimentSpec.to_dict`), or the shorthand with
    ``workload`` / ``scale`` / ``modes`` (preset names) / ``threads``
    / ``params`` / ``faults`` (a ``ber=...,seed=...`` spec string).
    Raises :class:`~repro.common.errors.ServiceError` on malformed
    input so the HTTP layer can answer 400 instead of 500.
    """
    if not isinstance(body, dict):
        raise ServiceError("request body must be a JSON object")
    if "spec" in body:
        try:
            return ExperimentSpec.from_dict(body["spec"])
        except (ReproError, KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed spec: {error}") from error
    from repro.core.presets import resolve_scale, workload_params
    from repro.workloads.registry import get_workload

    workload = body.get("workload")
    if not workload:
        raise ServiceError(
            'submit body needs "workload" (or a full "spec" object)'
        )
    try:
        get_workload(workload)  # fail fast on unknown codes
        scale = resolve_scale(body.get("scale"))
        faults = None
        if body.get("faults"):
            from repro.faults import FaultPlan

            faults = FaultPlan.from_spec(body["faults"])
        mode_names = body.get("modes") or ["baseline", "graphpim"]
        modes = []
        for name in mode_names:
            ctor = _MODE_CTORS.get(str(name).lower())
            if ctor is None:
                raise ServiceError(
                    f"unknown mode {name!r}; choose from "
                    f"{sorted(_MODE_CTORS)}"
                )
            modes.append(ctor().with_faults(faults))
        params = dict(workload_params(workload))
        params.update(body.get("params") or {})
        return ExperimentSpec.for_workload(
            workload,
            scale,
            modes=modes,
            num_threads=int(body.get("threads", 16)),
            params=params,
        )
    except ServiceError:
        raise
    except (ReproError, TypeError, ValueError) as error:
        raise ServiceError(f"invalid submission: {error}") from error


class ServiceServer:
    """The asyncio HTTP listener in front of one :class:`JobBroker`."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        broker: Optional[JobBroker] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServiceConfig()
        self.registry = (
            registry
            if registry is not None
            else (broker.registry if broker is not None
                  else MetricsRegistry())
        )
        self.broker = broker or JobBroker(
            self.config, registry=self.registry
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._m_requests = self.registry.counter(
            "service_requests_total", "HTTP requests by route and code"
        )
        self._m_latency = self.registry.histogram(
            "service_request_seconds",
            "HTTP request handling latency",
            buckets=REQUEST_SECONDS_BUCKETS,
        )

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful after :meth:`start`)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )

    async def stop(self) -> int:
        """Stop accepting connections, then drain the broker."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await self.broker.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        request_id = uuid.uuid4().hex[:12]
        loop = asyncio.get_running_loop()
        started = loop.time()
        route = "unparsed"
        code = 0  # 0 = no response written (empty connection)
        try:
            method, path, headers = await self._read_head(reader)
            if method is None:
                return  # client closed without sending a request
            # Honor a caller-supplied correlation id: the same
            # request_id then spans client, HTTP layer, broker, and
            # (through lease/complete) the worker that executed it.
            request_id = (
                sanitize_request_id(headers.get("x-request-id", ""))
                or request_id
            )
            with request_id_context(request_id):
                bare = path.split("?", 1)[0]
                if (
                    method == "GET"
                    and bare.startswith("/v1/jobs/")
                    and bare.endswith("/events")
                ):
                    # SSE: long-lived, incrementally written response
                    # that bypasses the Content-Length writer below.
                    route = "/v1/jobs/{id}/events"
                    job_id = bare[len("/v1/jobs/"):-len("/events")]
                    code = await self._stream_events(
                        writer, job_id, headers, request_id
                    )
                    _log.info(
                        "%s %s -> %d",
                        method,
                        path,
                        code,
                        extra={
                            "event": "request",
                            "method": method,
                            "path": path,
                            "route": route,
                            "code": code,
                            "duration_s": loop.time() - started,
                        },
                    )
                    return
                body = await self._read_body(reader, headers)
                route, code, payload, extra = await self._route(
                    method, path, body
                )
                self._write_response(
                    writer, code, payload, request_id, extra
                )
                _log.info(
                    "%s %s -> %d",
                    method,
                    path,
                    code,
                    extra={
                        "event": "request",
                        "method": method,
                        "path": path,
                        "route": route,
                        "code": code,
                        "duration_s": loop.time() - started,
                    },
                )
        except _BodyTooLarge:
            code = 413
            self._write_response(
                writer, 413, {"error": "request body too large"},
                request_id, {},
            )
        except ServiceError as error:
            code = 400
            self._write_response(
                writer, 400, {"error": str(error)}, request_id, {}
            )
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            code = 0  # torn connection: nothing to answer
        except Exception as error:  # never kill the accept loop
            code = 500
            _log.exception("handler crashed: %s", error)
            try:
                self._write_response(
                    writer, 500,
                    {"error": f"{type(error).__name__}: {error}"},
                    request_id, {},
                )
            except ConnectionError:
                pass
        finally:
            if code:
                self._m_requests.inc(route=route, code=str(code))
                self._m_latency.observe(
                    loop.time() - started, route=route
                )
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    async def _read_head(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None, None, None
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ServiceError("malformed request line") from None
        headers: "dict[str, str]" = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(self, reader, headers: dict) -> bytes:
        length = int(headers.get("content-length", 0) or 0)
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge()
        return await reader.readexactly(length)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch; returns ``(route, code, payload, extra_headers)``.

        ``payload`` is a dict (JSON-rendered), pre-serialized bytes, or
        a ``(bytes, content_type)`` pair for non-JSON responses.
        """
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return (
                "/healthz", 200,
                {"status": "ok", **self.broker.stats()}, {},
            )
        if path == "/readyz" and method == "GET":
            if self.broker.draining:
                return (
                    "/readyz", 503, {"status": "draining"},
                    {"Retry-After":
                     f"{self.config.retry_after_s:g}"},
                )
            stats = self.broker.stats()
            fleet = stats.get("fleet", {})
            local_alive = stats["workers_alive"]
            fleet_alive = fleet.get("workers_alive", 0)
            # Degraded = nothing can execute: every local worker slot
            # crashed past its restart budget (or dispatch-only mode
            # runs none) AND no fleet worker has a fresh heartbeat.
            # Queued jobs would never run, so stop admitting.
            nothing_local = not local_alive and (
                stats["workers"] or self.config.fleet
            )
            if nothing_local and not fleet_alive:
                return (
                    "/readyz", 503,
                    {"status": "degraded",
                     "workers_alive": 0,
                     "fleet_workers_alive": 0,
                     "worker_crashes": stats["worker_crashes"]},
                    {"Retry-After":
                     f"{self.config.retry_after_s:g}"},
                )
            return (
                "/readyz", 200,
                {"status": "ready",
                 "workers_alive": local_alive,
                 "fleet_workers_alive": fleet_alive},
                {},
            )
        if path == "/metrics" and method == "GET":
            text = render_prometheus(self.registry.snapshot())
            return (
                "/metrics", 200,
                (text.encode("utf-8"),
                 "text/plain; version=0.0.4; charset=utf-8"),
                {},
            )
        if path == "/" and method == "GET":
            return (
                "/", 200,
                {
                    "service": "repro",
                    "endpoints": [
                        "POST /v1/jobs",
                        "GET /v1/jobs/{id}",
                        "GET /v1/jobs/{id}/events",
                        "POST /v1/fleet/register",
                        "POST /v1/fleet/lease",
                        "POST /v1/fleet/heartbeat",
                        "POST /v1/fleet/complete",
                        "POST /v1/fleet/deregister",
                        "GET /healthz",
                        "GET /readyz",
                        "GET /metrics",
                    ],
                },
                {},
            )
        if path == "/v1/jobs":
            if method != "POST":
                return "/v1/jobs", 405, {"error": "POST only"}, {}
            return await self._submit(body)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_status(path[len("/v1/jobs/"):])
        if path.startswith("/v1/fleet/"):
            return await self._fleet(method, path, body)
        return path, 404, {"error": f"no route for {method} {path}"}, {}

    async def _fleet(self, method: str, path: str, body: bytes):
        """The pull-worker protocol (all POST, all JSON bodies)."""
        route = path
        if method != "POST":
            return route, 405, {"error": "POST only"}, {}
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return (
                route, 400,
                {"error": f"invalid JSON body: {error}"}, {},
            )
        if not isinstance(parsed, dict):
            return (
                route, 400,
                {"error": "request body must be a JSON object"}, {},
            )
        worker_id = str(parsed.get("worker_id") or "")
        if not worker_id or len(worker_id) > 128:
            return (
                route, 400,
                {"error": 'fleet request needs "worker_id"'}, {},
            )
        fleet = self.broker.fleet
        action = path[len("/v1/fleet/"):]
        if action == "register":
            if self.broker.draining:
                return (
                    route, 503, {"error": "service is draining"},
                    {"Retry-After": f"{self.config.retry_after_s:g}"},
                )
            capacity = int(parsed.get("capacity", 1) or 1)
            return route, 200, fleet.register(worker_id, capacity), {}
        if action == "lease":
            max_jobs = int(parsed.get("max_jobs", 1) or 1)
            return route, 200, fleet.lease(worker_id, max_jobs), {}
        if action == "heartbeat":
            jobs = parsed.get("jobs") or []
            if not isinstance(jobs, list):
                return (
                    route, 400, {"error": '"jobs" must be a list'}, {},
                )
            payload = fleet.heartbeat(
                worker_id,
                [str(job_id) for job_id in jobs],
                frames=parsed.get("frames"),
                spans=parsed.get("spans"),
            )
            return route, 200, payload, {}
        if action == "complete":
            job_id = str(parsed.get("job_id") or "")
            if not job_id:
                return (
                    route, 400,
                    {"error": 'complete needs "job_id"'}, {},
                )
            return (
                route, 200, fleet.complete(worker_id, job_id, parsed),
                {},
            )
        if action == "deregister":
            return route, 200, await fleet.deregister(worker_id), {}
        return (
            route, 404, {"error": f"no fleet action {action!r}"}, {}
        )

    async def _submit(self, body: bytes):
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return (
                "/v1/jobs", 400,
                {"error": f"invalid JSON body: {error}"}, {},
            )
        try:
            spec = spec_from_request(parsed)
            priority = parsed.get("priority", "interactive")
            client = str(parsed.get("client", ""))
            job, outcome = await self.broker.submit(
                spec, priority=priority, client=client
            )
        except AdmissionError as error:
            code = 503 if isinstance(error, DrainingError) else 429
            return (
                "/v1/jobs", code,
                {
                    "error": str(error),
                    "reason": error.reason,
                    "retry_after_s": error.retry_after_s,
                },
                {"Retry-After": f"{error.retry_after_s:g}"},
            )
        except ServiceError as error:
            return "/v1/jobs", 400, {"error": str(error)}, {}
        code = 200 if job.finished else 202
        return (
            "/v1/jobs", code,
            {
                "job_id": job.job_id,
                "status": job.status,
                "outcome": outcome,
                "poll": f"/v1/jobs/{job.job_id}",
            },
            {},
        )

    def _job_status(self, job_id: str):
        route = "/v1/jobs/{id}"
        job = self.broker.get(job_id)
        if job is not None and job.status == "done":
            return route, 200, job.result_bytes, {}
        if job is not None:
            return route, 200, job.status_dict(), {}
        stored = self.broker.lookup_response(job_id)
        if stored is not None:
            return route, 200, stored, {}
        return route, 404, {"error": f"unknown job {job_id!r}"}, {}

    # ------------------------------------------------------------------
    # Event streaming (SSE)
    # ------------------------------------------------------------------

    @staticmethod
    def _sse_frame(entry) -> bytes:
        event_id, event, data = entry
        return (
            f"id: {event_id}\nevent: {event}\n"
            f"data: {json.dumps(data)}\n\n"
        ).encode("utf-8")

    async def _stream_events(
        self, writer, job_id: str, headers: dict, request_id: str
    ) -> int:
        """``GET /v1/jobs/{id}/events``: stream until a terminal event.

        Replays the broker's per-job ring (filtered past the client's
        ``Last-Event-ID`` if it reconnected), then relays live events
        from a bounded subscriber queue, writing ``: heartbeat``
        comments whenever ``stream_heartbeat_s`` passes without one.
        The stream ends after a terminal event (``done`` / ``failed`` /
        ``checkpointed``), when the client disconnects, or when the
        service starts draining.  Returns the HTTP status code for the
        request log/metrics.
        """
        last_id: Optional[int] = None
        raw = headers.get("last-event-id", "")
        if raw:
            try:
                last_id = int(raw)
            except ValueError:
                last_id = None  # ignore garbage resume cookies
        subscription = self.broker.subscribe(
            job_id, last_event_id=last_id
        )
        if subscription is None:
            self._write_response(
                writer, 404,
                {"error": f"unknown job {job_id!r}"},
                request_id, {},
            )
            return 404
        replay, queue = subscription
        head = [
            "HTTP/1.1 200 OK",
            "Content-Type: text/event-stream",
            "Cache-Control: no-cache",
            f"X-Request-Id: {request_id}",
            "Connection: close",
        ]
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        )
        try:
            for entry in replay:
                writer.write(self._sse_frame(entry))
                if entry[1] in TERMINAL_EVENTS:
                    await writer.drain()
                    return 200
            await writer.drain()
            while True:
                try:
                    entry = await asyncio.wait_for(
                        queue.get(),
                        timeout=self.config.stream_heartbeat_s,
                    )
                except asyncio.TimeoutError:
                    if self.broker.draining:
                        # Graceful drain closes every queued job's
                        # stream via "checkpointed"; anything still
                        # idle here would pin the shutdown.
                        return 200
                    writer.write(b": heartbeat\n\n")
                    await writer.drain()
                    continue
                writer.write(self._sse_frame(entry))
                await writer.drain()
                if entry[1] in TERMINAL_EVENTS:
                    return 200
        except ConnectionError:
            return 200  # client went away mid-stream
        finally:
            self.broker.unsubscribe(job_id, queue)

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    def _write_response(
        self, writer, code: int, payload, request_id: str, extra: dict
    ) -> None:
        if isinstance(payload, tuple):
            body, content_type = payload
        elif isinstance(payload, (bytes, bytearray)):
            body, content_type = bytes(payload), "application/json"
        else:
            body = json.dumps(payload).encode("utf-8") + b"\n"
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {code} {_STATUS_TEXT.get(code, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"X-Request-Id: {request_id}",
            "Connection: close",
        ]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )


class _BodyTooLarge(Exception):
    """Internal: request body exceeded MAX_BODY_BYTES."""


# ----------------------------------------------------------------------
# Process entry points
# ----------------------------------------------------------------------


async def serve_async(
    config: ServiceConfig,
    announce: Callable[[str], None] = print,
    ready: "Optional[Callable[[ServiceServer], Awaitable[None] | None]]" = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    ``announce`` receives human-readable lifecycle lines (the CLI
    prints them; the smoke test parses the "listening on" line for the
    ephemeral port).  ``ready`` is an optional hook invoked once the
    listener is bound — tests use it to trigger client traffic.
    Returns the process exit code: 0 after a clean drain.
    """
    server = ServiceServer(config)
    await server.start()
    announce(
        f"repro service listening on "
        f"http://{config.host}:{server.port}"
    )
    _log.info(
        "service started",
        extra={
            "event": "service_start",
            "host": config.host,
            "port": server.port,
            "workers": config.workers,
            "queue_capacity": config.queue_capacity,
        },
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: "list[signal.Signals]" = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or exotic platform: rely on stop()
    if ready is not None:
        outcome = ready(server)
        if asyncio.iscoroutine(outcome):
            await outcome
    try:
        await stop.wait()
        announce("repro service draining ...")
        checkpointed = await server.stop()
        announce(
            f"repro service stopped "
            f"({checkpointed} queued job(s) checkpointed)"
        )
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    _log.info(
        "service stopped",
        extra={"event": "service_stop"},
    )
    return 0


class ThreadedServer:
    """Run a service on a background thread (tests, benchmarks).

    Usage::

        with ThreadedServer(config) as server:
            client = ServiceClient(f"http://127.0.0.1:{server.port}")
            ...

    The context exit triggers the same graceful drain SIGTERM would.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.port: Optional[int] = None
        self.server: Optional[ServiceServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._failed: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = ServiceServer(self.config)
            await server.start()
            self.server = server
            self.port = server.port
            self._started.set()
            await self._stop.wait()
            await server.stop()

        try:
            asyncio.run(main())
        except BaseException as error:  # surface bind errors to caller
            self._failed = error
            self._started.set()

    def __enter__(self) -> "ThreadedServer":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._failed is not None:
            raise ServiceError(
                f"service thread failed to start: {self._failed}"
            ) from self._failed
        if self.port is None:
            raise ServiceError("service thread did not come up in 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


__all__ = [
    "MAX_BODY_BYTES",
    "REQUEST_SECONDS_BUCKETS",
    "ServiceServer",
    "ThreadedServer",
    "sanitize_request_id",
    "serve_async",
    "spec_from_request",
]
