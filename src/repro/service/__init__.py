"""Simulation-as-a-service: serve (trace, config, faults) queries.

PRs 2–4 built the substrate a serving tier needs — a content-addressed
result cache, a resilient experiment runner, and an observability
layer.  This package puts an API on top: ``repro serve`` runs a
long-lived, zero-dependency asyncio HTTP/JSON service that answers
:class:`~repro.runner.spec.ExperimentSpec` queries, and
:mod:`repro.service.client` is its typed client.

The interesting part is the :class:`~repro.service.broker.JobBroker`
between the HTTP frontend and the runner:

- **single-flight coalescing** on the content-addressed
  :func:`~repro.runner.fingerprint.spec_key` — N identical concurrent
  submissions execute exactly one simulation, and every caller gets
  bit-identical response bytes;
- **cache short-circuit** — previously answered specs complete at
  admission time, before the queue;
- **bounded backpressure** — a capacity-limited admission queue
  (HTTP 429 + ``Retry-After``) and per-client token-bucket rate
  limiting keep memory and load bounded;
- **priority lanes** — interactive what-ifs overtake batch sweeps;
- **graceful drain** — SIGTERM finishes in-flight jobs, rejects new
  ones (``/readyz`` flips to 503 first), and checkpoints the unstarted
  queue in the PR 3 journal format for the next boot to restore.

Deployment knobs live on :class:`~repro.service.config.ServiceConfig`
and never enter :class:`~repro.sim.config.SystemConfig`, so cache
fingerprints are identical between CLI runs and served runs.
"""

from repro.service.broker import (
    AdmissionError,
    DrainingError,
    Job,
    JobBroker,
    QueueFullError,
    RateLimitedError,
    TokenBucket,
    canonical_json,
)
from repro.service.client import (
    ClientBackpressureError,
    JobFailedError,
    JobStatus,
    ServiceClient,
    StreamEvent,
    SubmitTicket,
)
from repro.service.config import (
    DEFAULT_PORT,
    QUEUE_CHECKPOINT_FILENAME,
    ServiceConfig,
)
from repro.service.http import (
    ServiceServer,
    ThreadedServer,
    serve_async,
    spec_from_request,
)

__all__ = [
    "AdmissionError",
    "ClientBackpressureError",
    "DEFAULT_PORT",
    "DrainingError",
    "Job",
    "JobBroker",
    "JobFailedError",
    "JobStatus",
    "QUEUE_CHECKPOINT_FILENAME",
    "QueueFullError",
    "RateLimitedError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "StreamEvent",
    "SubmitTicket",
    "ThreadedServer",
    "TokenBucket",
    "canonical_json",
    "serve_async",
    "spec_from_request",
]
