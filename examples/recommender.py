"""Item-to-item collaborative filtering on a Twitter-like graph.

Run with::

    python examples/recommender.py [num_users]

The paper's second real-world application (Section IV-B5): popularity
counting, co-occurrence accumulation (the atomic-dense phase GraphPIM
accelerates), similarity normalization, and top-k recommendation.
"""

import sys

from repro.apps.datasets import twitter_like_graph
from repro.apps.recommender import RecommenderSystem
from repro.core.api import GraphPimSystem


def main() -> None:
    num_users = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    print(f"Generating Twitter-like follower graph ({num_users} users)")
    graph = twitter_like_graph(num_users, seed=13)
    print(f"  {graph}")

    app = RecommenderSystem()
    run = app.run(graph, num_threads=16, top_k=4)

    print()
    print(f"co-occurrence pairs counted: {run.outputs['pairs_counted']}")
    recommendations = run.outputs["recommendations"]
    print(f"users with recommendations : {len(recommendations)}")
    for user, items in list(recommendations.items())[:5]:
        print(f"  user {user:5d} -> recommends accounts {items}")

    print()
    print("Replaying the application trace through the modeled systems ...")
    report = GraphPimSystem(num_threads=16).evaluate_trace(run)
    print(report.summary())


if __name__ == "__main__":
    main()
