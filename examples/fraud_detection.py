"""Financial fraud detection on a Bitcoin-like transaction graph.

Run with::

    python examples/fraud_detection.py [num_accounts]

The paper's first real-world application (Section IV-B5): community
labeling + flow accumulation + ring search + account scoring over a
transaction graph.  The example plants known fraud rings, runs the
pipeline, shows that the planted rings are flagged, and reports the
GraphPIM speedup for the whole application.
"""

import sys

from repro.apps.datasets import bitcoin_like_graph, planted_ring_members
from repro.apps.fraud import FraudDetection
from repro.core.api import GraphPimSystem


def main() -> None:
    num_accounts = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    print(f"Generating Bitcoin-like transaction graph ({num_accounts} accounts)")
    graph = bitcoin_like_graph(num_accounts, seed=11)
    planted = planted_ring_members(num_accounts, seed=11)
    print(f"  {graph}; planted fraud rings: {len(planted)}")

    app = FraudDetection()
    run = app.run(graph, num_threads=16)
    outputs = run.outputs

    print()
    print(f"communities found  : {outputs['communities']}")
    print(f"ring origins found : {outputs['ring_members']}")
    print(f"top flagged        : {outputs['flagged_accounts'][:8]}")

    planted_members = {v for ring in planted for v in ring}
    flagged = set(outputs["flagged_accounts"])
    overlap = flagged & planted_members
    print(f"flagged ∩ planted  : {sorted(overlap)}")

    print()
    print("Replaying the application trace through the modeled systems ...")
    report = GraphPimSystem(num_threads=16).evaluate_trace(run)
    print(report.summary())


if __name__ == "__main__":
    main()
