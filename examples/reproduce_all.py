"""Regenerate every table and figure of the paper's evaluation.

Run with::

    python examples/reproduce_all.py [tiny|small|paper] [experiment ...]

With no experiment arguments, runs the full index from DESIGN.md.
``tiny`` finishes in a couple of minutes; ``small`` (default) matches
the numbers recorded in EXPERIMENTS.md; ``paper`` is the calibration
scale (slow).
"""

import sys
import time

from repro.analysis import check_strict, lint_config
from repro.harness import EXPERIMENTS, get_experiment, run_experiment
from repro.harness.charts import bar_chart
from repro.harness.suite import set_strict
from repro.sim.config import SystemConfig

DEFAULT_ORDER = [
    "fig01", "fig02", "fig04",
    "tab02", "tab03", "tab05", "tab06",
    "fig07", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "tab08", "fig17",
]

#: Experiments that take no scale argument (static tables).
STATIC = {"tab02", "tab03", "tab05", "tab06"}


def main() -> None:
    args = sys.argv[1:]
    scale = "small"
    if args and args[0] in ("tiny", "small", "paper"):
        scale = args.pop(0)
    get_experiment("fig07")  # force registry load
    experiments = args or DEFAULT_ORDER
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}")

    # Lint pre-flight: validate the three evaluated configurations up
    # front and lint + race-check every suite trace before it is
    # simulated, so the run fails fast on invariant violations instead
    # of rendering skewed figures.
    for config in SystemConfig().evaluation_trio():
        check_strict(lint_config(config))
    set_strict(True)

    print(f"Reproducing {len(experiments)} artifacts at scale={scale!r}\n")
    total_start = time.time()
    for experiment_id in experiments:
        start = time.time()
        if experiment_id in STATIC:
            result = run_experiment(experiment_id)
        else:
            result = run_experiment(experiment_id, scale=scale)
        print(result.render())
        if experiment_id == "fig07":
            print()
            print(
                bar_chart(
                    result.column("workload"),
                    result.column("GraphPIM"),
                    title="GraphPIM speedup over baseline (· = 1.0x)",
                    reference=1.0,
                )
            )
        elif experiment_id == "fig10":
            print()
            print(
                bar_chart(
                    result.column("workload"),
                    result.column("llc_miss_rate"),
                    title="offload-candidate LLC miss rate",
                )
            )
        print(f"  ({time.time() - start:.1f}s)\n")
    print(f"Done in {time.time() - total_start:.1f}s")


if __name__ == "__main__":
    main()
