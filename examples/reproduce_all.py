"""Regenerate every table and figure of the paper's evaluation.

Run with::

    python examples/reproduce_all.py [tiny|small|paper] [--jobs N]
                                     [--no-cache] [experiment ...]

With no experiment arguments, runs the full index from DESIGN.md.
``tiny`` finishes in a couple of minutes; ``small`` (default) matches
the numbers recorded in EXPERIMENTS.md; ``paper`` is the calibration
scale (slow).

The heavy simulation grid is executed up front through the experiment
runner (:mod:`repro.runner`): jobs fan out over ``--jobs`` worker
processes (default: all CPUs) and results persist in ``.repro_cache/``,
so a re-run of this script performs zero simulations.  Strictness is
carried explicitly by ``RunnerConfig(strict=True)`` — every trace is
linted and race-checked before simulation and the run fails fast on
invariant violations instead of rendering skewed figures.
"""

import sys
import time

from repro.analysis import check_strict, lint_config
from repro.harness import (
    EXPERIMENTS,
    adopt_grid_results,
    get_experiment,
    run_experiment,
)
from repro.harness.charts import bar_chart
from repro.runner import RunnerConfig, run_full_grid
from repro.sim.config import SystemConfig

DEFAULT_ORDER = [
    "fig01", "fig02", "fig04",
    "tab02", "tab03", "tab05", "tab06",
    "fig07", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "tab08", "fig17",
]

#: Experiments that take no scale argument (static tables).
STATIC = {"tab02", "tab03", "tab05", "tab06"}


def _parse_args(argv: list) -> tuple:
    scale = "small"
    jobs = None
    cache = True
    experiments = []
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("tiny", "small", "paper"):
            scale = arg
        elif arg == "--jobs":
            if not args:
                raise SystemExit("--jobs requires a worker count")
            jobs = int(args.pop(0))
        elif arg == "--no-cache":
            cache = False
        else:
            experiments.append(arg)
    return scale, jobs, cache, experiments


def main() -> None:
    scale, jobs, cache, experiments = _parse_args(sys.argv[1:])
    get_experiment("fig07")  # force registry load
    experiments = experiments or DEFAULT_ORDER
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}")

    # Validate the three evaluated configurations up front, then run the
    # whole simulation grid through the strict parallel runner and hand
    # the products to the memoized suites; every experiment below is a
    # view over this grid.
    for config in SystemConfig().evaluation_trio():
        check_strict(lint_config(config))
    runner_config = RunnerConfig(
        scale=scale,
        strict=True,
        jobs=jobs,
        cache_dir=".repro_cache" if cache else None,
    )
    print(f"Reproducing {len(experiments)} artifacts at scale={scale!r}\n")
    total_start = time.time()
    grid, runner_report = run_full_grid(runner_config)
    adopt_grid_results(scale, grid)
    print(runner_report.summary())
    print()

    for experiment_id in experiments:
        start = time.time()
        if experiment_id in STATIC:
            result = run_experiment(experiment_id)
        else:
            result = run_experiment(experiment_id, scale=scale)
        print(result.render())
        if experiment_id == "fig07":
            print()
            print(
                bar_chart(
                    result.column("workload"),
                    result.column("GraphPIM"),
                    title="GraphPIM speedup over baseline (· = 1.0x)",
                    reference=1.0,
                )
            )
        elif experiment_id == "fig10":
            print()
            print(
                bar_chart(
                    result.column("workload"),
                    result.column("llc_miss_rate"),
                    title="offload-candidate LLC miss rate",
                )
            )
        print(f"  ({time.time() - start:.1f}s)\n")
    print(f"Done in {time.time() - total_start:.1f}s")


if __name__ == "__main__":
    main()
