"""Authoring a new workload against the framework API.

Run with::

    python examples/custom_workload.py

Shows the extension path a downstream user takes: implement a
``Workload`` whose property updates go through the traced atomic
primitives, and the whole evaluation stack (offload analysis, three
system modes, energy) works on it unchanged.

The example workload is *label spreading* — a semi-supervised
classifier where a few seed vertices push their labels outward and
conflicts are resolved by an atomic max on (votes, label) packed
values.
"""

import numpy as np

from repro.core.api import GraphPimSystem
from repro.framework.context import FrameworkContext
from repro.graph import ldbc_like_graph
from repro.graph.csr import CsrGraph
from repro.trace.events import AtomicOp
from repro.workloads.base import Category, Workload


class LabelSpreading(Workload):
    """Seeded label propagation with atomic-max conflict resolution."""

    code = "LSpread"
    name = "Label spreading"
    category = Category.GRAPH_TRAVERSAL
    host_instruction = "lock cmpxchg (max loop)"
    pim_op = AtomicOp.MAX
    applicable = True

    def execute(self, ctx: FrameworkContext, graph: CsrGraph, seeds=None):
        if seeds is None:
            order = np.argsort(-graph.out_degrees())
            seeds = {int(order[i]): i + 1 for i in range(4)}
        tg = ctx.register_graph(graph)
        n = graph.num_vertices
        # Packed (strength << 8 | label) so one atomic max carries both.
        state = ctx.property_table("ls.state", n, 0)

        trace0 = ctx.threads[0]
        for vertex, label in seeds.items():
            state.write(trace0, vertex, (255 << 8) | label)
        ctx.barrier()

        frontier = list(seeds)
        rounds = 0
        while frontier and rounds < 30:
            updated = []

            def spread(tid, trace, u):
                trace.work(4)
                packed = state.read(trace, u)
                strength, label = packed >> 8, packed & 0xFF
                if strength <= 1:
                    return
                candidate = ((strength - 1) << 8) | label
                for v in tg.neighbors(trace, u):
                    if state.atomic_max(trace, v, candidate):
                        updated.append(v)

            ctx.parallel_for(frontier, spread)
            frontier = list(dict.fromkeys(updated))
            rounds += 1

        labels = state.values & 0xFF
        return {
            "labels": labels,
            "labeled": int(np.count_nonzero(labels)),
            "rounds": rounds,
        }


def main() -> None:
    graph = ldbc_like_graph(2_000, seed=7)
    print(f"Graph: {graph}")

    workload = LabelSpreading()
    run = workload.run(graph, num_threads=16)
    print(
        f"Labeled {run.outputs['labeled']} / {graph.num_vertices} vertices "
        f"in {run.outputs['rounds']} rounds"
    )
    stats = run.stats
    print(
        f"Trace: {run.trace.num_events} events, {stats.atomics} atomics "
        f"({stats.property_atomics} PIM candidates — "
        f"atomic max maps to HMC 'CAS if greater')"
    )

    report = GraphPimSystem(num_threads=16).evaluate_trace(run)
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
