"""Quickstart: evaluate BFS under Baseline / U-PEI / GraphPIM.

Run with::

    python examples/quickstart.py [num_vertices]

Builds an LDBC-like social graph, traces breadth-first search on the
GraphBIG-equivalent framework, replays the trace through the three
modeled systems, and prints the paper's headline metrics.
"""

import sys

from repro import GraphPimSystem, ldbc_like_graph
from repro.energy.model import uncore_energy


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    print(f"Generating LDBC-like graph with {num_vertices} vertices ...")
    graph = ldbc_like_graph(num_vertices, seed=7)
    print(f"  {graph}")

    system = GraphPimSystem(num_threads=16)
    print("Tracing BFS and simulating three system configurations ...")
    report = system.evaluate("BFS", graph)

    print()
    print(report.summary())

    baseline = report.baseline
    graphpim = report.results["GraphPIM"]
    base_flits = sum(report.bandwidth_flits("Baseline"))
    pim_flits = sum(report.bandwidth_flits("GraphPIM"))
    base_energy = uncore_energy(baseline).total
    pim_energy = uncore_energy(graphpim).total

    print()
    print(f"offloaded atomics  : {graphpim.core_stats.offloaded_atomics}")
    print(
        f"candidate miss rate: {baseline.candidate_miss_rate():.1%} "
        "(why bypassing the cache is safe)"
    )
    print(f"bandwidth saved    : {1 - pim_flits / base_flits:.1%} vs baseline")
    print(f"uncore energy saved: {1 - pim_energy / base_energy:.1%} vs baseline")


if __name__ == "__main__":
    main()
